"""Loss functions and the gradient-descent training loop (Section 8.1, Figure 6).

The paper trains the two classifiers by minimizing the squared loss

    loss(θ) = Σ_z ½ (l_θ(z) − f(z))²

over all sixteen 4-bit inputs, with gradients obtained from the collection
of derivative programs ``∂P/∂α`` for every parameter α.  The trainer below
reproduces that loop: it pre-compiles the derivative program multisets once,
then at every epoch evaluates the prediction and its gradient for every
data point and takes a plain gradient-descent step.

The average negative log-likelihood — the loss the paper calls natural but
could not use because PennyLane did not support it — is also provided
(``loss="nll"``); it exercises the same gradient machinery through the chain
rule and is used by the extension example.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import TrainingError
from repro.lang.parameters import ParameterBinding
from repro.vqc.classifier import BooleanClassifier
from repro.api import Estimator
from repro.autodiff.execution import DerivativeProgramSet

Bits = tuple[int, ...]
Dataset = Sequence[tuple[Sequence[int], int]]


def squared_loss(predictions: Sequence[float], labels: Sequence[int]) -> float:
    """``Σ_z ½ (l_θ(z) − f(z))²`` — the loss of Eq. (8.3)."""
    if len(predictions) != len(labels):
        raise TrainingError("predictions and labels must have the same length")
    return float(sum(0.5 * (p - y) ** 2 for p, y in zip(predictions, labels)))


def squared_loss_gradient_weight(prediction: float, label: int) -> float:
    """``∂loss/∂l`` for one data point under the squared loss."""
    return prediction - label


def negative_log_likelihood(
    predictions: Sequence[float], labels: Sequence[int], *, epsilon: float = 1e-9
) -> float:
    """Average negative log-likelihood of the labels under the predicted probabilities."""
    if len(predictions) != len(labels):
        raise TrainingError("predictions and labels must have the same length")
    total = 0.0
    for p, y in zip(predictions, labels):
        p = min(max(p, epsilon), 1.0 - epsilon)
        total += -(y * math.log(p) + (1 - y) * math.log(1.0 - p))
    return total / len(predictions)


def negative_log_likelihood_gradient_weight(
    prediction: float, label: int, count: int, *, epsilon: float = 1e-9
) -> float:
    """``∂NLL/∂l`` for one data point (averaged over the dataset size)."""
    p = min(max(prediction, epsilon), 1.0 - epsilon)
    return (-(label / p) + (1 - label) / (1.0 - p)) / count


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of the gradient-descent loop.

    ``backend`` selects the execution scheme of every simulation — any
    spec :func:`repro.api.resolve_backend` accepts.  The default
    ``"auto"`` routes measurement-free classifiers (``P1``, and the
    measurement-free members of every derivative multiset) through the
    batched statevector tier and everything else through the exact density
    simulator; pass ``"exact-density"`` to reproduce the historical
    all-density arithmetic bit for bit.

    ``retry`` and ``timeout`` make long runs survivable on flaky execution
    substrates: ``retry`` (a :class:`~repro.service.RetryPolicy`, an
    attempt count, or ``None``) re-runs an epoch batch's failed groups
    within a bounded budget — a retried epoch produces the identical
    numbers, so the loss history is unchanged — and ``timeout`` bounds
    every request of every epoch (seconds; a blown deadline aborts the run
    with :class:`~repro.errors.DeadlineExceededError` instead of hanging).
    """

    epochs: int = 200
    learning_rate: float = 0.5
    loss: str = "squared"
    seed: int = 0
    initial_spread: float = 0.1
    record_accuracy: bool = True
    backend: object = "auto"
    retry: object = None
    timeout: float | None = None

    def __post_init__(self):
        if self.epochs < 1:
            raise TrainingError("training needs at least one epoch")
        if self.learning_rate <= 0:
            raise TrainingError("the learning rate must be positive")
        if self.loss not in ("squared", "nll"):
            raise TrainingError(f"unknown loss {self.loss!r}; expected 'squared' or 'nll'")
        if self.timeout is not None and self.timeout <= 0:
            raise TrainingError("the per-request timeout must be positive seconds")
        # Validate the backend and retry specs eagerly — the same
        # resolution the estimator/service apply later, so a typo fails at
        # configuration time with the full list of valid spellings instead
        # of mid-training.
        from repro.api import resolve_backend
        from repro.errors import SemanticsError
        from repro.service import resolve_retry

        try:
            resolve_backend(self.backend)
            resolve_retry(self.retry)
        except SemanticsError as error:
            raise TrainingError(str(error)) from error


@dataclass
class TrainingResult:
    """The outcome of one training run."""

    classifier_name: str
    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)
    final_binding: ParameterBinding | None = None

    @property
    def final_loss(self) -> float:
        """The loss after the last epoch."""
        if not self.losses:
            raise TrainingError("the training run recorded no losses")
        return self.losses[-1]

    @property
    def best_loss(self) -> float:
        """The minimum loss observed during training."""
        if not self.losses:
            raise TrainingError("the training run recorded no losses")
        return min(self.losses)


class GradientDescentTrainer:
    """Plain gradient descent on a :class:`BooleanClassifier`.

    The optimizer is deliberately simple (no momentum): the point of the
    case study is the *gradient computation*, which goes through the
    paper's transform → compile → execute pipeline for every parameter.
    All evaluations run through an :class:`~repro.api.Estimator` sharing
    the classifier's compiled derivative multisets and denotation cache;
    each epoch's work is submitted as *request batches* on a
    :class:`~repro.service.Session` of the estimator's execution service
    (one batch of forward-value requests, one batch of gradient-row
    requests), so the planner hands whole-dataset batches to backends that
    support stacking (the default ``backend="auto"`` statevector tier
    advances all data points through each gate together), and the loss,
    the accuracy and the gradient weights of one epoch all reuse a single
    forward pass.
    """

    def __init__(self, classifier: BooleanClassifier, config: TrainingConfig | None = None):
        self.classifier = classifier
        self.config = config if config is not None else TrainingConfig()
        self.estimator: Estimator = classifier.estimator(self.config.backend)
        if self.config.retry is not None:
            from repro.service import resolve_retry

            # The classifier's estimator (and its service) may predate this
            # trainer; apply the configured policy to the live service so
            # every epoch batch drains under it.
            self.estimator.service.retry = resolve_retry(self.config.retry)
        #: The trainer's lane on the estimator's execution service: each
        #: epoch's forward pass and gradient fan-out travel as *request
        #: batches* through it, so the planner folds them into single
        #: batched backend calls — and coalesces them with whatever else
        #: (another trainer, an evaluation loop) shares the service.
        self.session = self.estimator.session(name="vqc-training")

    @property
    def program_sets(self) -> tuple[DerivativeProgramSet, ...]:
        """The pre-compiled derivative program multisets (built lazily, once)."""
        return tuple(
            self.estimator.program_set(parameter)
            for parameter in self.classifier.parameters
        )

    # -- single-epoch computations ----------------------------------------------

    def predictions(self, dataset: Dataset, binding: ParameterBinding) -> list[float]:
        """The classifier output ``l_θ(z)`` for every data point.

        One request batch through the training session: the service plans
        the whole dataset into a single ``value_batch`` backend call, so
        stacking backends simulate every data point through each gate with
        a single broadcasted contraction.  Inputs are fed as pure
        statevectors — the pure tier reads the amplitudes directly and the
        density backends lift on entry, so no path pays an avoidable
        ``O(4^n)`` construction.
        """
        handles = self.session.submit_many(
            [
                self.estimator.request_value(
                    self.classifier.input_statevector(bits),
                    binding,
                    timeout=self.config.timeout,
                )
                for bits, _ in dataset
            ]
        )
        return [float(handle.result(self.config.timeout)) for handle in handles]

    def loss(self, dataset: Dataset, binding: ParameterBinding) -> float:
        """Evaluate the configured loss on the whole dataset."""
        return self._loss_from_predictions(self.predictions(dataset, binding), dataset)

    def _loss_from_predictions(self, predictions: Sequence[float], dataset: Dataset) -> float:
        labels = [label for _, label in dataset]
        if self.config.loss == "squared":
            return squared_loss(predictions, labels)
        return negative_log_likelihood(predictions, labels)

    def _accuracy_from_predictions(self, predictions: Sequence[float], dataset: Dataset) -> float:
        label = self.classifier.label_from_probability
        correct = sum(
            1
            for prediction, (_, truth) in zip(predictions, dataset)
            if label(prediction) == int(truth)
        )
        return correct / len(dataset)

    def loss_gradient(self, dataset: Dataset, binding: ParameterBinding) -> np.ndarray:
        """Gradient of the loss with respect to every classifier parameter.

        Chain rule: ``∂loss/∂α = Σ_z (∂loss/∂l)(z) · ∂l_θ(z)/∂α`` where the
        inner derivative is computed by the paper's differentiation pipeline.
        The estimator's denotation cache keeps the forward evaluations shared
        with :meth:`loss` and :meth:`predictions` at the same point.
        """
        return self._gradient_from_predictions(
            self.predictions(dataset, binding), dataset, binding
        )

    def _gradient_from_predictions(
        self,
        predictions: Sequence[float],
        dataset: Dataset,
        binding: ParameterBinding,
    ) -> np.ndarray:
        """Chain-rule gradient via one request batch of gradient rows.

        Data points whose loss weight is (numerically) zero are dropped
        before the batch is built — they contribute nothing; the rest are
        submitted together through the training session, so the planner
        feeds them to the backend as a single ``derivative_batch`` fan-out,
        one gradient row per surviving point, combined in dataset order.
        """
        parameters = self.classifier.parameters
        gradient = np.zeros(len(parameters), dtype=float)
        count = len(dataset)
        weights = []
        for prediction, (_, label) in zip(predictions, dataset):
            if self.config.loss == "squared":
                weights.append(squared_loss_gradient_weight(prediction, label))
            else:
                weights.append(
                    negative_log_likelihood_gradient_weight(prediction, label, count)
                )
        active = [index for index, weight in enumerate(weights) if abs(weight) >= 1e-15]
        if not active:
            return gradient
        handles = self.session.submit_many(
            [
                self.estimator.request_gradient(
                    self.classifier.input_statevector(dataset[index][0]),
                    binding,
                    parameters,
                    timeout=self.config.timeout,
                )
                for index in active
            ]
        )
        for weight_index, handle in zip(active, handles):
            gradient += weights[weight_index] * handle.result(self.config.timeout)
        return gradient

    # -- the training loop ----------------------------------------------------------

    def train(
        self,
        dataset: Dataset,
        initial_binding: ParameterBinding | None = None,
    ) -> TrainingResult:
        """Run gradient descent and return the loss (and accuracy) history.

        Each epoch computes one forward pass (``value``) per data point; the
        loss, the recorded accuracy and the chain-rule weights of the
        gradient all share those predictions instead of re-evaluating the
        classifier, and the denotation cache deduplicates any remaining
        overlap.
        """
        if not dataset:
            raise TrainingError("cannot train on an empty dataset")
        binding = (
            initial_binding
            if initial_binding is not None
            else self.classifier.initial_binding(self.config.seed, self.config.initial_spread)
        )
        result = TrainingResult(classifier_name=self.classifier.name)
        for _ in range(self.config.epochs):
            predictions = self.predictions(dataset, binding)
            result.losses.append(self._loss_from_predictions(predictions, dataset))
            if self.config.record_accuracy:
                result.accuracies.append(self._accuracy_from_predictions(predictions, dataset))
            gradient = self._gradient_from_predictions(predictions, dataset, binding)
            updates = {
                parameter: binding[parameter] - self.config.learning_rate * gradient[index]
                for index, parameter in enumerate(self.classifier.parameters)
            }
            binding = ParameterBinding(updates)
        predictions = self.predictions(dataset, binding)
        result.losses.append(self._loss_from_predictions(predictions, dataset))
        if self.config.record_accuracy:
            result.accuracies.append(self._accuracy_from_predictions(predictions, dataset))
        result.final_binding = binding
        return result
