"""Boolean-function datasets for the classification case study (Section 8.1).

The paper's task: classify 4-bit inputs ``z = z1 z2 z3 z4`` according to the
label ``f(z) = ¬(z1 ⊕ z4)``.  The input bits are loaded into the quantum
register as the computational basis state ``|z1 z2 z3 z4⟩`` and the
classifier reads out the fourth qubit.
"""

from __future__ import annotations

from itertools import product
from typing import Callable, Sequence

from repro.errors import TrainingError

Bits = tuple[int, ...]
LabelFunction = Callable[[Bits], int]


def paper_label_function(bits: Bits) -> int:
    """The labelling function of Section 8.1: ``f(z) = ¬(z1 ⊕ z4)``."""
    if len(bits) != 4:
        raise TrainingError(f"the paper's label function takes 4 bits, got {len(bits)}")
    return 1 - (bits[0] ^ bits[3])


def parity_label_function(bits: Bits) -> int:
    """Parity of all bits — a harder labelling used by the extra examples/tests."""
    value = 0
    for bit in bits:
        value ^= bit
    return value


def majority_label_function(bits: Bits) -> int:
    """Majority vote of the bits (ties broken towards 0)."""
    return 1 if sum(bits) * 2 > len(bits) else 0


def all_bitstrings(num_bits: int) -> list[Bits]:
    """Every bitstring of the given length, in lexicographic order."""
    if num_bits < 1:
        raise TrainingError("a dataset needs at least one input bit")
    return [tuple(bits) for bits in product((0, 1), repeat=num_bits)]


def boolean_dataset(
    label_function: LabelFunction,
    num_bits: int = 4,
    inputs: Sequence[Bits] | None = None,
) -> list[tuple[Bits, int]]:
    """Build a labelled dataset ``[(z, f(z)), ...]`` over all (or selected) inputs."""
    points = list(inputs) if inputs is not None else all_bitstrings(num_bits)
    dataset = []
    for bits in points:
        bits = tuple(int(b) for b in bits)
        if any(b not in (0, 1) for b in bits):
            raise TrainingError(f"input {bits} is not a bitstring")
        label = int(label_function(bits))
        if label not in (0, 1):
            raise TrainingError(f"label function returned {label}, expected 0 or 1")
        dataset.append((bits, label))
    return dataset


def paper_dataset() -> list[tuple[Bits, int]]:
    """The full 16-point dataset of the Section 8.1 case study."""
    return boolean_dataset(paper_label_function, num_bits=4)
