"""Exception hierarchy for the ``repro`` library.

Every error raised by the public API derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated exceptions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class LinalgError(ReproError):
    """A quantum linear-algebra object failed validation.

    Raised, for example, when a matrix claimed to be unitary is not, when a
    density operator has negative eigenvalues, or when a measurement is not
    complete.
    """


class DimensionMismatchError(LinalgError):
    """Two objects that must share a dimension do not."""


class LayoutError(DimensionMismatchError):
    """A state's array shape disagrees with its register layout.

    Raised instead of silently reinterpreting amplitudes when, for example, a
    reshape would assume qubit-sized tensor factors on a register that
    contains qutrits or bounded-integer variables.
    """


class PurityError(LinalgError):
    """A pure-state (statevector) representation was requested for a mixed state.

    Raised when a :class:`~repro.sim.density.DensityState` with rank > 1 is
    asked for its amplitudes, or when a reset channel inside a pure-state
    simulation would produce a mixed output (the reset variable is entangled
    with the rest of the register).  Purity-aware backends catch this and
    fall back to the density-matrix path.
    """


class TrajectoryError(ReproError):
    """A branch-splitting trajectory simulation exceeded its budget.

    Raised when the per-outcome branch ensemble of
    :mod:`repro.sim.trajectories` grows past the configured branch cap, or
    when a bounded ``while`` cannot be truncated within the certified error
    budget.  Trajectory-aware backends catch this and fall back to the
    exact density-matrix path for the offending program.
    """


class ProgramSyntaxError(ReproError):
    """A program AST or surface-syntax string is malformed."""


class ParseError(ProgramSyntaxError):
    """The surface-syntax parser could not parse its input."""


class WellFormednessError(ProgramSyntaxError):
    """A structurally valid AST violates a static well-formedness rule.

    Examples: a gate applied to a number of qubits different from its arity,
    a ``case`` statement whose measurement has a different number of outcomes
    than branches, a normal (non-additive) program containing a ``+`` node.
    """


class ParameterError(ReproError):
    """A parameter binding is missing, duplicated, or otherwise invalid."""


class SemanticsError(ReproError):
    """A semantic evaluator was used outside its domain of definition."""


class TransformError(ReproError):
    """The differentiation transformation cannot be applied.

    Raised when a program contains a parameterized gate that depends on the
    differentiation parameter but is not one of the supported rotation or
    coupling gates (the paper's code-transformation rules cover exactly that
    gate family).
    """


class CompilationError(ReproError):
    """The additive-program compiler reached an invalid state."""


class LogicError(ReproError):
    """A differentiation-logic derivation is invalid."""


class TrainingError(ReproError):
    """A variational training loop was configured incorrectly."""
