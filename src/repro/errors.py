"""Exception hierarchy for the ``repro`` library.

Every error raised by the public API derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated exceptions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class LinalgError(ReproError):
    """A quantum linear-algebra object failed validation.

    Raised, for example, when a matrix claimed to be unitary is not, when a
    density operator has negative eigenvalues, or when a measurement is not
    complete.
    """


class DimensionMismatchError(LinalgError):
    """Two objects that must share a dimension do not."""


class LayoutError(DimensionMismatchError):
    """A state's array shape disagrees with its register layout.

    Raised instead of silently reinterpreting amplitudes when, for example, a
    reshape would assume qubit-sized tensor factors on a register that
    contains qutrits or bounded-integer variables.
    """


class PurityError(LinalgError):
    """A pure-state (statevector) representation was requested for a mixed state.

    Raised when a :class:`~repro.sim.density.DensityState` with rank > 1 is
    asked for its amplitudes, or when a reset channel inside a pure-state
    simulation would produce a mixed output (the reset variable is entangled
    with the rest of the register).  Purity-aware backends catch this and
    fall back to the density-matrix path.
    """


class TrajectoryError(ReproError):
    """A branch-splitting trajectory simulation exceeded its budget.

    Raised when the per-outcome branch ensemble of
    :mod:`repro.sim.trajectories` grows past the configured branch cap, or
    when a bounded ``while`` cannot be truncated within the certified error
    budget.  Trajectory-aware backends catch this and fall back to the
    exact density-matrix path for the offending program.
    """


class ProgramSyntaxError(ReproError):
    """A program AST or surface-syntax string is malformed."""


class ParseError(ProgramSyntaxError):
    """The surface-syntax parser could not parse its input."""


class WellFormednessError(ProgramSyntaxError):
    """A structurally valid AST violates a static well-formedness rule.

    Examples: a gate applied to a number of qubits different from its arity,
    a ``case`` statement whose measurement has a different number of outcomes
    than branches, a normal (non-additive) program containing a ``+`` node.
    """


class ParameterError(ReproError):
    """A parameter binding is missing, duplicated, or otherwise invalid."""


class SemanticsError(ReproError):
    """A semantic evaluator was used outside its domain of definition."""


class TransformError(ReproError):
    """The differentiation transformation cannot be applied.

    Raised when a program contains a parameterized gate that depends on the
    differentiation parameter but is not one of the supported rotation or
    coupling gates (the paper's code-transformation rules cover exactly that
    gate family).
    """


class CompilationError(ReproError):
    """The additive-program compiler reached an invalid state."""


class LogicError(ReproError):
    """A differentiation-logic derivation is invalid."""


class TrainingError(ReproError):
    """A variational training loop was configured incorrectly."""


class ServiceError(ReproError):
    """A request failed inside the execution-service layer.

    This branch classifies failures for the retry machinery of
    :mod:`repro.service.resilience`: the class attribute ``retryable``
    says whether re-running the same work can succeed.  Infrastructure
    hiccups (a worker died, an injected transient fault) are retryable;
    deadline/cancellation outcomes and exhausted retry budgets are final
    by construction.
    """

    #: Whether re-executing the failed work may succeed.  Overridden by
    #: subclasses; :func:`is_retryable` reads it off any exception.
    retryable: bool = False


class CancelledError(ServiceError):
    """The request was cancelled before its group executed.

    Raised by :meth:`~repro.service.ResultHandle.result` after a
    successful :meth:`~repro.service.ResultHandle.cancel`.  Final: the
    caller asked for the work not to happen.
    """


class DeadlineExceededError(ServiceError, TimeoutError):
    """The request's deadline passed before it produced a result.

    Doubles as a :class:`TimeoutError` so callers that guarded
    ``handle.result(timeout=...)`` with the builtin keep working.  Final:
    a blown deadline must not silently retry into even more lateness.
    """


class TransientServiceError(ServiceError):
    """A failure that is expected to succeed when the work is re-run.

    The base class of every injected transient fault
    (:mod:`repro.service.faults`) and the marker a custom backend or
    executor raises to opt a failure into the service's retry budget.
    """

    retryable = True


class WireProtocolError(ServiceError):
    """A remote worker violated the wire protocol.

    Raised when a frame fails its CRC check, is truncated, carries an
    unknown message type, or answers a request it was never sent.  *Not*
    retryable: a protocol violation means the worker (or the channel) is
    corrupting data, and re-running the same work through it could
    silently produce a wrong number — the one failure mode the service
    must never convert into a retry.  The supervisor kills the offending
    worker instead.
    """


class WorkerCrashError(TransientServiceError):
    """A remote worker process died while holding in-flight work.

    Retryable by construction: the work itself is deterministic, so
    re-dispatching it to a healthy worker produces the bit-identical
    result.  Carries no partial state — a crashed worker's replies are
    discarded wholesale.
    """


class WorkerTimeoutError(TransientServiceError):
    """A remote worker exceeded the supervisor's per-call time budget.

    Distinct from :class:`DeadlineExceededError` (a *request's* deadline,
    final by policy): a hung worker is infrastructure trouble, so the
    supervisor kills it and the work is retryable on a healthy one.
    """


class WorkerPoolError(TransientServiceError):
    """The whole worker fleet is unhealthy (every slot exhausted its
    restart budget).  Raised from the pool executor's ``run`` so the
    service's degradation path re-runs the drain inline and the circuit
    breaker counts the fleet failure.
    """


class RemoteExecutionError(ServiceError):
    """A worker-side exception that could not travel back verbatim.

    Workers ship failures pickled so the client re-raises the original
    exception; when the original does not survive pickling, this wrapper
    carries its type name, message and traceback text instead, and
    mirrors the original's ``retryable`` classification so the service's
    retry budget treats it identically.
    """

    def __init__(self, message: str, *, retryable: bool = False, remote_traceback: str = ""):
        super().__init__(message)
        self.retryable = bool(retryable)
        self.remote_traceback = remote_traceback


class ResourceLimitError(ServiceError):
    """A request's predicted cost exceeds the service's admission budget.

    Raised by ``EstimatorService(max_cost=...)`` *before* the request is
    queued: the cost model's upper bound says executing it would exceed the
    configured budget, so the work never runs.  Final by construction — the
    prediction is static, so re-running admission yields the same verdict.
    ``predicted_cost`` and ``max_cost`` carry the comparison for callers
    that size budgets from rejections.
    """

    def __init__(self, message: str, *, predicted_cost: float = 0.0, max_cost: float = 0.0):
        super().__init__(message)
        self.predicted_cost = float(predicted_cost)
        self.max_cost = float(max_cost)


class RetryExhaustedError(ServiceError):
    """A retryable failure kept failing until the retry budget ran out.

    ``last_error`` (also chained as ``__cause__``) is the final underlying
    failure; ``attempts`` is how many times the group ran in total.
    """

    def __init__(self, message: str, *, attempts: int, last_error: BaseException):
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


def is_retryable(error: BaseException) -> bool:
    """Classify an exception for the service's retry machinery.

    The ``retryable`` attribute wins when present (every
    :class:`ServiceError` carries one); otherwise only
    :class:`ConnectionError` — the transport failures a future remote
    worker surfaces — is considered transient.  Everything else (user
    errors, semantic errors, deadline/cancellation outcomes) is final.
    """
    flag = getattr(error, "retryable", None)
    if flag is not None:
        return bool(flag)
    return isinstance(error, ConnectionError)
