"""Shot-based estimation of observable expectations (paper Section 7).

The paper's execution model estimates ``tr(Oρ)`` (and its derivatives) by
repeating a projective measurement and averaging the observed eigenvalues.
With an observable normalized to ``−I ⊑ O ⊑ I``, a Chernoff/Hoeffding bound
gives the ``O(1/δ²)`` repetition count quoted in Section 5, and the sum of
``m`` derivative programs requires ``O(m²/δ²)`` repetitions (Section 7,
"Execution").  This module implements those counts and the corresponding
estimators.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import LinalgError
from repro.linalg.observables import Observable


def chernoff_shot_count(
    precision: float,
    *,
    confidence: float = 0.95,
    value_range: float = 2.0,
) -> int:
    """Number of repetitions to estimate a bounded mean to additive error ``precision``.

    Hoeffding's inequality for i.i.d. samples in an interval of width
    ``value_range`` gives failure probability ``2·exp(−2nδ²/range²)``;
    solving for ``n`` at the requested confidence yields the bound.  With the
    paper's normalization the per-shot values are eigenvalues in ``[−1, 1]``,
    i.e. ``value_range = 2``.
    """
    if precision <= 0:
        raise LinalgError("precision must be positive")
    if not 0 < confidence < 1:
        raise LinalgError("confidence must lie strictly between 0 and 1")
    failure = 1.0 - confidence
    count = (value_range**2) * math.log(2.0 / failure) / (2.0 * precision**2)
    return int(math.ceil(count))


def program_sum_shot_count(
    num_programs: int,
    precision: float,
    *,
    confidence: float = 0.95,
) -> int:
    """Repetitions needed to estimate a sum of ``m`` bounded expectations.

    Following Section 7, the sum divided by ``m`` is treated as a single
    bounded observable on the program that first picks ``i`` uniformly at
    random and then runs the ``i``-th compiled program; estimating the
    rescaled mean to precision ``δ/m`` costs ``O(m²/δ²)`` shots.
    """
    if num_programs < 1:
        raise LinalgError("the program count must be at least one")
    return chernoff_shot_count(precision / num_programs, confidence=confidence)


def sample_observable_outcomes(
    observable: Observable,
    rho: np.ndarray,
    shots: int,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Sample ``shots`` eigenvalue readouts of the observable on state ρ.

    The observable is spectrally decomposed into a projective measurement
    (Eq. 5.1); each shot samples an outcome with the Born-rule probability
    and records the corresponding eigenvalue.  Partial density operators are
    handled by assigning the missing probability mass a zero readout, which
    matches the convention that aborted runs contribute nothing to the
    observable semantics.
    """
    if shots < 1:
        raise LinalgError("the number of shots must be at least one")
    rng = rng if rng is not None else np.random.default_rng()
    measurement, eigenvalues = observable.spectral_measurement()
    probabilities = measurement.probabilities(np.asarray(rho, dtype=complex))
    outcomes = list(probabilities)
    weights = np.clip(np.array([probabilities[m] for m in outcomes]), 0.0, None)
    total = float(weights.sum())
    values = np.array([eigenvalues[outcomes.index(m)] for m in outcomes])
    if total > 1.0 + 1e-9:
        weights = weights / total
        total = 1.0
    # Append an "aborted" outcome with zero readout for the missing mass.
    abort_probability = max(0.0, 1.0 - total)
    weights = np.append(weights, abort_probability)
    values = np.append(values, 0.0)
    weights = weights / weights.sum()
    indices = rng.choice(len(values), size=shots, p=weights)
    return values[indices]


def estimate_expectation(
    observable: Observable,
    rho: np.ndarray,
    *,
    precision: float = 0.05,
    confidence: float = 0.95,
    shots: int | None = None,
    rng: np.random.Generator | None = None,
) -> float:
    """Estimate ``tr(Oρ)`` by repeated projective measurement.

    Either give an explicit number of ``shots`` or a target ``precision`` and
    ``confidence`` from which a Chernoff-bound shot count is derived.
    """
    if shots is None:
        shots = chernoff_shot_count(precision, confidence=confidence)
    samples = sample_observable_outcomes(observable, rho, shots, rng=rng)
    return float(np.mean(samples))


def estimate_expectation_from_samples(samples: Sequence[float]) -> float:
    """Average a sequence of eigenvalue readouts into an expectation estimate."""
    samples = np.asarray(list(samples), dtype=float)
    if samples.size == 0:
        raise LinalgError("cannot average an empty sample set")
    return float(samples.mean())


def estimate_program_sum(
    observables_and_states: Sequence[tuple[Observable, np.ndarray]],
    *,
    precision: float = 0.1,
    confidence: float = 0.95,
    rng: np.random.Generator | None = None,
) -> float:
    """Estimate a sum ``Σ_i tr(O_i ρ_i)`` via the uniform-mixture trick of Section 7.

    Each shot first draws ``i`` uniformly, then measures ``O_i`` on ``ρ_i``;
    the average is rescaled by the number of programs.  This is exactly the
    execution scheme the paper proposes for the multiset of compiled
    derivative programs.
    """
    if not observables_and_states:
        return 0.0
    rng = rng if rng is not None else np.random.default_rng()
    num_programs = len(observables_and_states)
    shots = program_sum_shot_count(num_programs, precision, confidence=confidence)
    readouts = np.empty(shots, dtype=float)
    choices = rng.integers(0, num_programs, size=shots)
    for shot_index, program_index in enumerate(choices):
        observable, rho = observables_and_states[program_index]
        readouts[shot_index] = sample_observable_outcomes(observable, rho, 1, rng=rng)[0]
    return float(num_programs * readouts.mean())
