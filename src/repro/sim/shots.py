"""Shot-based estimation of observable expectations (paper Section 7).

The paper's execution model estimates ``tr(Oρ)`` (and its derivatives) by
repeating a projective measurement and averaging the observed eigenvalues.
With an observable normalized to ``−I ⊑ O ⊑ I``, a Chernoff/Hoeffding bound
gives the ``O(1/δ²)`` repetition count quoted in Section 5, and the sum of
``m`` derivative programs requires ``O(m²/δ²)`` repetitions (Section 7,
"Execution").  This module implements those counts and the corresponding
estimators.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import LinalgError
from repro.linalg.observables import Observable
from repro.sim import rng as sim_rng

#: An outcome distribution: (eigenvalue readouts, matching probabilities).
Distribution = tuple[np.ndarray, np.ndarray]


def chernoff_shot_count(
    precision: float,
    *,
    confidence: float = 0.95,
    value_range: float = 2.0,
) -> int:
    """Number of repetitions to estimate a bounded mean to additive error ``precision``.

    Hoeffding's inequality for i.i.d. samples in an interval of width
    ``value_range`` gives failure probability ``2·exp(−2nδ²/range²)``;
    solving for ``n`` at the requested confidence yields the bound.  With the
    paper's normalization the per-shot values are eigenvalues in ``[−1, 1]``,
    i.e. ``value_range = 2``.
    """
    if precision <= 0:
        raise LinalgError("precision must be positive")
    if not 0 < confidence < 1:
        raise LinalgError("confidence must lie strictly between 0 and 1")
    failure = 1.0 - confidence
    count = (value_range**2) * math.log(2.0 / failure) / (2.0 * precision**2)
    return int(math.ceil(count))


def program_sum_shot_count(
    num_programs: int,
    precision: float,
    *,
    confidence: float = 0.95,
) -> int:
    """Repetitions needed to estimate a sum of ``m`` bounded expectations.

    Following Section 7, the sum divided by ``m`` is treated as a single
    bounded observable on the program that first picks ``i`` uniformly at
    random and then runs the ``i``-th compiled program; estimating the
    rescaled mean to precision ``δ/m`` costs ``O(m²/δ²)`` shots.
    """
    if num_programs < 1:
        raise LinalgError("the program count must be at least one")
    return chernoff_shot_count(precision / num_programs, confidence=confidence)


def normalized_distribution(values: Sequence[float], weights: Sequence[float]) -> Distribution:
    """Turn raw Born-rule weights into a sampleable distribution.

    Negative weights are clipped to zero; missing probability mass (partial
    density operators — aborted branches) is assigned to an extra outcome
    with a zero readout, matching the convention that aborted runs contribute
    nothing to the observable semantics.
    """
    values = np.asarray(values, dtype=float)
    weights = np.clip(np.asarray(weights, dtype=float), 0.0, None)
    total = float(weights.sum())
    if total > 1.0 + 1e-9:
        weights = weights / total
        total = 1.0
    values = np.append(values, 0.0)
    weights = np.append(weights, max(0.0, 1.0 - total))
    return values, weights / weights.sum()


def outcome_distribution(observable: Observable, rho: np.ndarray) -> Distribution:
    """Return the eigenvalue-readout distribution of measuring ``observable`` on ρ.

    The spectral decomposition and the Born-rule probabilities are computed
    once; sampling from the returned ``(values, weights)`` pair is then a
    cheap table lookup per shot.
    """
    measurement, eigenvalues = observable.spectral_measurement()
    probabilities = measurement.probabilities(np.asarray(rho, dtype=complex))
    # probabilities is keyed in operator order, which matches eigenvalues.
    return normalized_distribution(list(eigenvalues), list(probabilities.values()))


def sample_observable_outcomes(
    observable: Observable,
    rho: np.ndarray,
    shots: int,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Sample ``shots`` eigenvalue readouts of the observable on state ρ.

    The observable is spectrally decomposed into a projective measurement
    (Eq. 5.1); each shot samples an outcome with the Born-rule probability
    and records the corresponding eigenvalue.
    """
    if shots < 1:
        raise LinalgError("the number of shots must be at least one")
    rng = sim_rng.resolve(rng)
    values, weights = outcome_distribution(observable, rho)
    indices = rng.choice(len(values), size=shots, p=weights)
    return values[indices]


def estimate_expectation(
    observable: Observable,
    rho: np.ndarray,
    *,
    precision: float = 0.05,
    confidence: float = 0.95,
    shots: int | None = None,
    rng: np.random.Generator | None = None,
) -> float:
    """Estimate ``tr(Oρ)`` by repeated projective measurement.

    Either give an explicit number of ``shots`` or a target ``precision`` and
    ``confidence`` from which a Chernoff-bound shot count is derived.
    """
    if shots is None:
        shots = chernoff_shot_count(precision, confidence=confidence)
    samples = sample_observable_outcomes(observable, rho, shots, rng=rng)
    return float(np.mean(samples))


def estimate_distribution_sum(
    distributions: Sequence[Distribution],
    *,
    precision: float = 0.1,
    confidence: float = 0.95,
    rng: np.random.Generator | None = None,
) -> float:
    """Estimate ``Σ_i E[d_i]`` from pre-computed outcome distributions.

    The uniform-mixture trick of Section 7: each shot draws a program index
    uniformly and then one readout from that program's distribution; the
    mean is rescaled by the program count.  Because the distributions are
    tabulated up front, per-shot work is a single table lookup (the seed
    implementation re-derived the spectral decomposition *per shot*).
    """
    if not distributions:
        return 0.0
    rng = sim_rng.resolve(rng)
    num_programs = len(distributions)
    shots = program_sum_shot_count(num_programs, precision, confidence=confidence)
    choices = rng.integers(0, num_programs, size=shots)
    readouts = np.empty(shots, dtype=float)
    for index, (values, weights) in enumerate(distributions):
        mask = choices == index
        count = int(mask.sum())
        if count:
            readouts[mask] = values[rng.choice(len(values), size=count, p=weights)]
    return float(num_programs * readouts.mean())


def estimate_expectation_from_samples(samples: Sequence[float]) -> float:
    """Average a sequence of eigenvalue readouts into an expectation estimate."""
    samples = np.asarray(list(samples), dtype=float)
    if samples.size == 0:
        raise LinalgError("cannot average an empty sample set")
    return float(samples.mean())


def estimate_program_sum(
    observables_and_states: Sequence[tuple[Observable, np.ndarray]],
    *,
    precision: float = 0.1,
    confidence: float = 0.95,
    rng: np.random.Generator | None = None,
) -> float:
    """Estimate a sum ``Σ_i tr(O_i ρ_i)`` via the uniform-mixture trick of Section 7.

    Each shot first draws ``i`` uniformly, then measures ``O_i`` on ``ρ_i``;
    the average is rescaled by the number of programs.  This is exactly the
    execution scheme the paper proposes for the multiset of compiled
    derivative programs.  Every per-program distribution is tabulated once
    before sampling begins.
    """
    distributions = [
        outcome_distribution(observable, rho) for observable, rho in observables_and_states
    ]
    return estimate_distribution_sum(
        distributions, precision=precision, confidence=confidence, rng=rng
    )
