"""Exact density-matrix simulation.

:class:`DensityState` couples a partial density operator with a
:class:`~repro.sim.hilbert.RegisterLayout` and exposes exactly the state
transformers required by the denotational semantics of Figure 1b:

* applying a unitary to a subset of variables,
* applying the reset channel of ``q := |0⟩``,
* computing the (sub-normalized) branch state of a measurement outcome,
* scaling and adding states (probabilistic combination of branches),
* taking observable expectations.

States are *partial* density operators — the trace may drop below one when a
program aborts on some branches — which is precisely the convention the
paper uses to encode branch probabilities into the output state.

Every transformer dispatches to the local tensor-contraction kernels of
:mod:`repro.sim.kernels`: a k-local gate costs ``O(2^k · 4^n)`` and a
k-local readout ``O(4^n)``, instead of the ``O(8^n)`` full-space matrix
products of the embedding path (which survives as the reference
implementation in :meth:`repro.sim.hilbert.RegisterLayout.embed_operator`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.errors import DimensionMismatchError, LinalgError, PurityError
from repro.linalg.measurement import Measurement
from repro.linalg.superop import Superoperator, initialization_channel
from repro.sim import kernels
from repro.sim.hilbert import RegisterLayout


@dataclass(frozen=True, eq=False)
class DensityState:
    """A partial density operator over the variables of a register layout.

    Equality is numerical (``np.allclose`` on the matrices); since such
    "equal" states would not hash alike, the class is explicitly unhashable —
    use ``id()``-keyed containers or the matrix itself when indexing.
    """

    layout: RegisterLayout
    matrix: np.ndarray

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DensityState):
            return NotImplemented
        return self.layout == other.layout and bool(np.allclose(self.matrix, other.matrix))

    __hash__ = None  # numerically-equal states cannot hash consistently

    def __init__(self, layout: RegisterLayout, matrix: np.ndarray):
        matrix = np.asarray(matrix, dtype=complex)
        if matrix.shape != (layout.total_dim, layout.total_dim):
            raise DimensionMismatchError(
                f"state shape {matrix.shape} does not match layout dimension {layout.total_dim}"
            )
        object.__setattr__(self, "layout", layout)
        object.__setattr__(self, "matrix", matrix)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def zero_state(cls, layout: RegisterLayout) -> "DensityState":
        """The all-``|0⟩`` product state."""
        return cls.basis_state(layout, {})

    @classmethod
    def basis_state(cls, layout: RegisterLayout, assignment: Mapping[str, int]) -> "DensityState":
        """A computational-basis product state given per-variable values."""
        vector = layout.basis_product_state(assignment)
        return cls(layout, np.outer(vector, np.conj(vector)))

    @classmethod
    def from_pure(cls, layout: RegisterLayout, vector: np.ndarray) -> "DensityState":
        """Wrap a pure state vector on the full register."""
        vector = np.asarray(vector, dtype=complex).reshape(-1)
        if vector.shape[0] != layout.total_dim:
            raise DimensionMismatchError("pure state dimension does not match layout")
        return cls(layout, np.outer(vector, np.conj(vector)))

    @classmethod
    def null_state(cls, layout: RegisterLayout) -> "DensityState":
        """The zero partial density operator (output of ``abort``)."""
        dim = layout.total_dim
        return cls(layout, np.zeros((dim, dim), dtype=complex))

    # -- basic queries ----------------------------------------------------------

    def trace(self) -> float:
        """Total probability mass carried by the state."""
        return float(np.real(np.trace(self.matrix)))

    def is_null(self, *, atol: float = 1e-12) -> bool:
        """Return True when the state is (numerically) the zero operator."""
        return bool(np.allclose(self.matrix, 0.0, atol=atol))

    def copy(self) -> "DensityState":
        """Return an independent copy of the state."""
        return DensityState(self.layout, self.matrix.copy())

    def pure_amplitudes(self, *, atol: float = 1e-10) -> np.ndarray:
        """Extract ``|ψ⟩`` when the state is (numerically) rank-1, i.e. pure.

        Purity of a PSD operator is ``tr(ρ²) = (tr ρ)²`` — an ``O(4^n)``
        element-wise check, far cheaper than simulating on the density
        representation.  Mixed states (relative defect above ``atol``) raise
        :class:`~repro.errors.PurityError`; the zero partial operator maps
        to the zero vector.  The returned vector carries the state's trace
        as its squared norm and is defined up to a global phase (fixed by
        the dominant diagonal entry), which no expectation can observe.
        """
        trace = self.trace()
        if trace <= atol:
            return np.zeros(self.layout.total_dim, dtype=complex)
        purity = float(np.real(np.einsum("ij,ji->", self.matrix, self.matrix)))
        defect = trace**2 - purity
        if defect > atol * trace**2:
            raise PurityError(
                f"the density state has rank > 1 (relative purity defect "
                f"{defect / trace**2:.2e}); no statevector represents it"
            )
        diagonal = np.real(np.diag(self.matrix))
        pivot = int(np.argmax(diagonal))
        return self.matrix[:, pivot] / np.sqrt(diagonal[pivot])

    # -- state transformers -------------------------------------------------------

    def apply_unitary(self, unitary: np.ndarray, targets: Sequence[str]) -> "DensityState":
        """Return ``UρU†`` where ``U`` acts on the target variables (contraction kernel)."""
        axes = self.layout.axes_of(targets)
        matrix = kernels.conjugate_operator_density(self.matrix, self.layout.dims, axes, unitary)
        return DensityState(self.layout, matrix)

    def apply_kraus(self, kraus_operators: Sequence[np.ndarray], targets: Sequence[str]) -> "DensityState":
        """Apply a Kraus-form superoperator acting on the target variables."""
        axes = self.layout.axes_of(targets)
        matrix = kernels.apply_kraus_density(self.matrix, self.layout.dims, axes, kraus_operators)
        return DensityState(self.layout, matrix)

    def apply_superoperator(self, channel: Superoperator, targets: Sequence[str]) -> "DensityState":
        """Apply a :class:`Superoperator` acting on the target variables."""
        return self.apply_kraus(channel.kraus_operators, targets)

    def initialize(self, variable: str) -> "DensityState":
        """Apply the reset channel of ``q := |0⟩`` to one variable.

        Implements ``E_{q→0}(ρ) = Σ_n |0⟩_q⟨n| ρ |n⟩_q⟨0|`` which covers both
        the Boolean and the bounded-integer cases of Figure 1a.
        """
        dim = self.layout.dim_of(variable)
        return self.apply_superoperator(initialization_channel(dim), [variable])

    def measurement_branch(self, measurement: Measurement, targets: Sequence[str], outcome: int) -> "DensityState":
        """Return the sub-normalized branch state ``M_m ρ M_m†`` of one outcome."""
        operator = measurement.operator(outcome)
        axes = self.layout.axes_of(targets)
        matrix = kernels.conjugate_operator_density(self.matrix, self.layout.dims, axes, operator)
        return DensityState(self.layout, matrix)

    def measurement_probabilities(self, measurement: Measurement, targets: Sequence[str]) -> dict[int, float]:
        """Return the Born-rule outcome distribution of measuring the targets.

        The state is partial-traced onto the targets once; the per-outcome
        probabilities never touch the full space.
        """
        axes = self.layout.axes_of(targets)
        probabilities = kernels.branch_probabilities_density(
            self.matrix, self.layout.dims, axes, measurement.operators
        )
        return dict(zip(measurement.outcomes, probabilities))

    def scaled(self, factor: float) -> "DensityState":
        """Scale the partial density operator by a non-negative factor."""
        if factor < 0:
            raise LinalgError("states can only be scaled by non-negative factors")
        return DensityState(self.layout, self.matrix * factor)

    def add(self, other: "DensityState") -> "DensityState":
        """Sum two partial density operators over the same layout."""
        if self.layout != other.layout:
            raise DimensionMismatchError("cannot add states over different layouts")
        return DensityState(self.layout, self.matrix + other.matrix)

    # -- observables -----------------------------------------------------------------

    def expectation(self, observable: np.ndarray, targets: Sequence[str] | None = None) -> float:
        """Return ``tr(Oρ)``; ``targets`` selects the variables ``O`` acts on.

        When ``targets`` is omitted the observable must act on the whole
        register in layout order.
        """
        observable = np.asarray(observable, dtype=complex)
        if targets is None:
            if observable.shape != self.matrix.shape:
                raise DimensionMismatchError("observable dimension does not match register")
            # tr(Oρ) as an element-wise contraction: O(4^n), no O(8^n) matmul.
            return float(np.real(np.einsum("ij,ji->", observable, self.matrix)))
        axes = self.layout.axes_of(targets)
        return kernels.expectation_density(self.matrix, self.layout.dims, axes, observable)

    def extended(self, variable: str, dim: int = 2, *, front: bool = True) -> "DensityState":
        """Return the state ``|0⟩⟨0|_new ⊗ ρ`` on a layout extended with an ancilla."""
        new_layout = self.layout.extended(variable, dim, front=front)
        zero = np.zeros((dim, dim), dtype=complex)
        zero[0, 0] = 1.0
        if front:
            matrix = np.kron(zero, self.matrix)
        else:
            matrix = np.kron(self.matrix, zero)
        return DensityState(new_layout, matrix)
