"""Shared default random generator for the simulation substrate.

The trajectory sampler and the shot-based estimators repeat tiny sampling
steps millions of times; constructing a fresh ``np.random.default_rng()``
inside each call (as the seed implementation did) pays the generator
setup — entropy gathering plus bit-generator allocation — per shot, and
makes a whole run impossible to seed from one place.

Every sampling entry point now threads an optional ``rng`` argument through
to :func:`resolve`, which falls back to the single module-level generator.
Call :func:`seed` once to make an entire shot loop reproducible.

The shared default is process-global state: forked workers inherit the same
generator position (identical "random" streams) and numpy generators are
not thread-safe.  Parallel callers should pass an explicit per-worker
``rng`` — e.g. from ``np.random.default_rng().spawn(n)`` — or call
:func:`seed` per worker; the shared default is for the common
single-process shot loop.
"""

from __future__ import annotations

import numpy as np

#: The process-wide default generator used when a call site passes ``rng=None``.
_DEFAULT_RNG: np.random.Generator = np.random.default_rng()


def default_generator() -> np.random.Generator:
    """Return the module-level default generator."""
    return _DEFAULT_RNG


def resolve(rng: np.random.Generator | None) -> np.random.Generator:
    """Return ``rng`` unchanged, or the shared default when ``rng`` is None."""
    return rng if rng is not None else _DEFAULT_RNG


def seed(value: int | None = None) -> np.random.Generator:
    """Re-seed the shared default generator and return it.

    ``seed(None)`` re-randomizes from OS entropy; an integer makes every
    subsequent un-seeded sampling call deterministic.
    """
    global _DEFAULT_RNG
    _DEFAULT_RNG = np.random.default_rng(value)
    return _DEFAULT_RNG
