"""Branch-splitting trajectory simulation of measuring programs.

The pure-state tier of :mod:`repro.sim.pure` refuses every program the
purity analysis rejects — but a measured branch of a pure state is still an
*ensemble of sub-normalized pure states*: for a measurement ``{M_m}``,

    [[case M = m → P_m]](|ψ⟩⟨ψ|)  =  Σ_m [[P_m]](M_m|ψ⟩⟨ψ|M_m†),

and each ``M_m|ψ⟩`` is again pure.  This module evaluates the defining
equations of Figure 1b on a *branch ensemble* — a ``(B, d^n)`` stack of
sub-normalized amplitude vectors representing ``ρ = Σ_b |ψ_b⟩⟨ψ_b|`` — so
that branching programs stay at ``O(B · 2^k · 2^n)`` per gate instead of
the density simulator's ``O(2^k · 4^n)``:

* ``case`` splits the stack per outcome
  (:func:`repro.sim.kernels.measure_branch_vector_batch`), denotes each
  branch program on its sub-stack, and concatenates the results;
* ``while(T)`` unrolls: each iteration appends the guard-0 (terminated)
  branches to the output and feeds the guard-1 branches through the body;
  the branch still running after ``T`` iterations aborts — exactly the
  macro expansion of Eq. (3.1).  When an error budget is configured, the
  unrolling stops early once the *remaining continuing probability mass* is
  certified below the budget (the dropped readout error is at most that
  mass times the observable's spectral norm — see ``mass_budget`` below);
* the additive choice ``+`` stacks both summands' trajectories (its
  observable semantics is the sum over the compiled multiset,
  Definition 4.1/5.2);
* ``q := |0⟩`` resets in one of two exact ways: branches the runtime
  entanglement check certifies as product-form keep a single trajectory
  (:func:`repro.sim.kernels.reset_vector_batch`); otherwise the reset
  channel's Kraus operators ``K_i = |0⟩⟨i|_q`` split every branch into at
  most ``dim(q)`` sub-branches — still an exact pure-state ensemble;
* zero-probability branches are pruned at a tolerance, and branches that
  are identical up to a global phase are coalesced (their masses add:
  ``|ψ⟩⟨ψ| + c|ψ⟩⟨ψ| = (1+c)|ψ⟩⟨ψ|``).

Every discarded branch's probability mass is accounted in
:attr:`TrajectoryResult.dropped` per input row, so callers can *certify*
``|tr(O ρ_exact) − Σ_b ⟨ψ_b|O|ψ_b⟩| ≤ dropped · ‖O‖`` and fall back to the
density simulator when the bound cannot be met.  The ensemble width is
capped (:attr:`TrajectoryOptions.max_branches`); exceeding it raises
:class:`~repro.errors.TrajectoryError`, the signal for the same fallback —
past ``B ≈ 2^n`` branches the ``O(4^n)`` density representation is the
cheaper encoding of the mixture anyway.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PurityError, SemanticsError, TrajectoryError
from repro.lang.ast import (
    Abort,
    Case,
    Init,
    Program,
    Seq,
    Skip,
    Sum,
    UnitaryApp,
    While,
)
from repro.lang.gates import bound_gate_matrix
from repro.lang.parameters import ParameterBinding
from repro.sim import kernels
from repro.sim.hilbert import RegisterLayout

__all__ = [
    "TrajectoryOptions",
    "TrajectoryResult",
    "coalesce_branches",
    "denote_trajectory_batch",
]


@dataclass(frozen=True)
class TrajectoryOptions:
    """Tuning knobs of the branch-splitting evaluator.

    ``prune_tol`` is the absolute squared-norm (probability-mass) floor
    below which a branch is discarded; exact zeros are always discarded
    (they carry no mass, so dropping them never changes any readout).
    ``mass_budget`` is the total probability mass the evaluator may discard
    *per input row* beyond exact zeros — it enables the early ``while``
    truncation and must be chosen by the caller as
    ``tolerable readout error / ‖O‖`` for certification.  ``max_branches``
    caps the ensemble width (``None`` derives ``max(64, d^n)``, the point
    where the density representation becomes the cheaper encoding);
    exceeding it raises :class:`~repro.errors.TrajectoryError`.
    ``coalesce_tol`` bounds ``sin²θ`` of the angle between two branches
    considered parallel — at the default ``1e-24`` a merge perturbs the
    represented state by at most ``~1e-12`` of the merged mass.
    """

    prune_tol: float = 1e-14
    mass_budget: float = 0.0
    max_branches: int | None = None
    coalesce: bool = True
    coalesce_tol: float = 1e-24

    def key(self) -> tuple:
        """A hashable identity of everything that affects the output."""
        return (
            self.prune_tol,
            self.mass_budget,
            self.max_branches,
            self.coalesce,
            self.coalesce_tol,
        )


@dataclass
class TrajectoryResult:
    """The output ensemble of one trajectory evaluation.

    ``amplitudes`` is the ``(B, d^n)`` stack of surviving sub-normalized
    branches and ``owners[b]`` the input-row index branch ``b`` descends
    from — readouts sum ``⟨ψ_b|O|ψ_b⟩`` over the branch axis per owner.
    ``dropped[r]`` upper-bounds the probability mass discarded from input
    row ``r`` (pruning below tolerance plus certified ``while``
    truncation); the readout error it induces is at most ``dropped[r] ·
    ‖O‖``.  ``branch_peak`` is the widest ensemble seen during evaluation.
    Treat instances as immutable — they are shared through the denotation
    cache.
    """

    amplitudes: np.ndarray
    owners: np.ndarray
    dropped: np.ndarray
    branch_peak: int


def _branch_masses(stack: np.ndarray) -> np.ndarray:
    return np.real(np.einsum("bi,bi->b", np.conj(stack), stack))


def coalesce_branches(
    stack: np.ndarray,
    owners: np.ndarray,
    *,
    tol: float = 1e-24,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge branches of the same owner that are parallel up to a phase.

    Two sub-normalized branches with ``sin²`` of their angle below ``tol``
    represent (numerically) the same pure state; their outer products add,
    so the merged branch keeps the representative's direction with the
    combined probability mass.  Projective measurements of basis-heavy
    states and symmetric ``+`` summands produce such duplicates routinely —
    coalescing keeps the ensemble width at the number of *distinct* states
    rather than the number of syntactic branches.
    """
    if stack.shape[0] <= 1:
        return stack, owners
    masses = _branch_masses(stack)
    keep_rows: list[np.ndarray] = []
    keep_owners: list[int] = []
    for owner in np.unique(owners):
        indices = np.flatnonzero(owners == owner)
        representatives: list[tuple[np.ndarray, float, float]] = []  # (row, row_mass, total)
        for index in indices:
            row, mass = stack[index], float(masses[index])
            for position, (rep, rep_mass, total) in enumerate(representatives):
                # sin²θ is measured as the residual of projecting `row`
                # onto the representative, ‖row − proj(row)‖² = mass·sin²θ.
                # The algebraically equivalent `rep_mass·mass − |⟨rep,row⟩|²`
                # cancels catastrophically: for branches differing by a
                # ~1e-9 component the overlap rounds to the full mass and
                # the test merges states that are measurably distinct.
                projection = np.vdot(rep, row) / max(rep_mass, np.finfo(float).tiny)
                residual = row - projection * rep
                if float(np.vdot(residual, residual).real) <= tol * max(
                    mass, np.finfo(float).tiny
                ):
                    representatives[position] = (rep, rep_mass, total + mass)
                    break
            else:
                representatives.append((row, mass, mass))
        for rep, rep_mass, total in representatives:
            if total != rep_mass:
                rep = rep * np.sqrt(total / max(rep_mass, np.finfo(float).tiny))
            keep_rows.append(rep)
            keep_owners.append(int(owner))
    if len(keep_rows) == stack.shape[0]:
        return stack, owners
    return np.array(keep_rows), np.array(keep_owners, dtype=np.intp)


class _Evaluator:
    def __init__(
        self,
        layout: RegisterLayout,
        binding: ParameterBinding | None,
        options: TrajectoryOptions,
        num_inputs: int,
    ):
        self.layout = layout
        self.binding = binding
        self.options = options
        self.cap = (
            options.max_branches
            if options.max_branches is not None
            else max(64, layout.total_dim)
        )
        self.dropped = np.zeros(num_inputs)
        self.peak = 0

    # -- bookkeeping -------------------------------------------------------

    def _check_cap(self, count: int) -> None:
        self.peak = max(self.peak, count)
        if count > self.cap:
            raise TrajectoryError(
                f"trajectory ensemble grew to {count} branches, past the cap of "
                f"{self.cap}; the density representation is the cheaper encoding "
                "of this mixture"
            )

    def _prune(
        self, stack: np.ndarray, owners: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Drop (numerically) zero-mass branches, charging their mass."""
        if stack.shape[0] == 0:
            return stack, owners
        masses = _branch_masses(stack)
        keep = masses > self.options.prune_tol
        if np.all(keep):
            return stack, owners
        lost = ~keep
        np.add.at(self.dropped, owners[lost], masses[lost])
        return stack[keep], owners[keep]

    def _compact(
        self, stacks: list[np.ndarray], owner_lists: list[np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Concatenate, coalesce and cap-check a list of partial ensembles."""
        stacks = [s for s in stacks if s.shape[0]]
        if not stacks:
            return self._empty()
        stack = np.concatenate(stacks) if len(stacks) > 1 else stacks[0]
        owners = (
            np.concatenate([o for o in owner_lists if o.shape[0]])
            if len(owner_lists) > 1
            else owner_lists[0]
        )
        if self.options.coalesce:
            stack, owners = coalesce_branches(
                stack, owners, tol=self.options.coalesce_tol
            )
        self._check_cap(stack.shape[0])
        return stack, owners

    def _empty(self) -> tuple[np.ndarray, np.ndarray]:
        return (
            np.zeros((0, self.layout.total_dim), dtype=complex),
            np.zeros(0, dtype=np.intp),
        )

    # -- the defining equations --------------------------------------------

    def denote(
        self, program: Program, stack: np.ndarray, owners: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        if stack.shape[0] == 0:
            return stack, owners
        if isinstance(program, Abort):
            return self._empty()
        if isinstance(program, Skip):
            return stack, owners
        if isinstance(program, Init):
            return self._reset(program.qubit, stack, owners)
        if isinstance(program, UnitaryApp):
            return (
                kernels.apply_operator_vector_batch(
                    stack,
                    self.layout.dims,
                    self.layout.axes_of(program.qubits),
                    bound_gate_matrix(program.gate, self.binding),
                ),
                owners,
            )
        if isinstance(program, Seq):
            stack, owners = self.denote(program.first, stack, owners)
            return self.denote(program.second, stack, owners)
        if isinstance(program, Case):
            return self._case(program, stack, owners)
        if isinstance(program, While):
            return self._while(program, stack, owners)
        if isinstance(program, Sum):
            left = self.denote(program.left, stack, owners)
            right = self.denote(program.right, stack, owners)
            return self._compact([left[0], right[0]], [left[1], right[1]])
        raise SemanticsError(
            f"{type(program).__name__} is not trajectory-simulable; the simulation "
            "report (repro.analysis.purity) gates which programs may take this path"
        )

    def _reset(
        self, variable: str, stack: np.ndarray, owners: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        axis = self.layout.index(variable)
        try:
            return (
                kernels.reset_vector_batch(stack, self.layout.dims, axis),
                owners,
            )
        except PurityError:
            # Some branch is entangled with the reset variable: split the
            # reset channel into its Kraus operators K_i = |0⟩⟨i| — each
            # K_i|ψ⟩ is pure, and Σ_i K_i|ψ⟩⟨ψ|K_i† is the channel exactly.
            dim = self.layout.dims[axis]
            stacks, owner_lists = [], []
            for source in range(dim):
                kraus = np.zeros((dim, dim), dtype=complex)
                kraus[0, source] = 1.0
                split = kernels.apply_operator_vector_batch(
                    stack, self.layout.dims, (axis,), kraus
                )
                split, split_owners = self._prune(split, owners)
                stacks.append(split)
                owner_lists.append(split_owners)
            return self._compact(stacks, owner_lists)

    def _case(
        self, program: Case, stack: np.ndarray, owners: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        axes = self.layout.axes_of(program.qubits)
        outcome_stacks = kernels.measure_branch_vector_batch(
            stack,
            self.layout.dims,
            axes,
            [program.measurement.operator(m) for m, _ in program.branches],
        )
        splits = [self._prune(split, owners) for split in outcome_stacks]
        self._check_cap(sum(split.shape[0] for split, _ in splits))
        stacks, owner_lists = [], []
        for (split, split_owners), (_, branch) in zip(splits, program.branches):
            if split.shape[0] == 0:
                continue
            out_stack, out_owners = self.denote(branch, split, split_owners)
            stacks.append(out_stack)
            owner_lists.append(out_owners)
        return self._compact(stacks, owner_lists)

    def _while(
        self, program: While, stack: np.ndarray, owners: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        axes = self.layout.axes_of(program.qubits)
        operators = {
            outcome: program.measurement.operator(outcome) for outcome in (0, 1)
        }
        finished_stacks: list[np.ndarray] = []
        finished_owners: list[np.ndarray] = []
        for _ in range(program.bound):
            if stack.shape[0] == 0:
                break
            terminated = kernels.apply_operator_vector_batch(
                stack, self.layout.dims, axes, operators[0]
            )
            terminated, terminated_owners = self._prune(terminated, owners)
            if terminated.shape[0]:
                finished_stacks.append(terminated)
                finished_owners.append(terminated_owners)
            continuing = kernels.apply_operator_vector_batch(
                stack, self.layout.dims, axes, operators[1]
            )
            stack, owners = self._prune(continuing, owners)
            if self._truncate_while(stack, owners):
                stack, owners = self._empty()
                break
            self._check_cap(
                sum(s.shape[0] for s in finished_stacks) + stack.shape[0]
            )
            stack, owners = self.denote(program.body, stack, owners)
        # The branch still running after the T-th iteration aborts — its
        # mass is removed by the semantics itself, not an approximation.
        return self._compact(finished_stacks, finished_owners)

    def _truncate_while(self, stack: np.ndarray, owners: np.ndarray) -> bool:
        """Certified early exit: may the continuing branches be discarded?

        Truncating at iteration ``t < T`` only loses the mass that would
        have *terminated* in iterations ``t..T-1``, which is at most the
        continuing mass (mass never increases).  The exit engages only when
        every input row with continuing mass stays within its budget after
        being charged that mass — otherwise the loop unrolls to its exact
        bound.
        """
        if self.options.mass_budget <= 0.0 or stack.shape[0] == 0:
            return False
        row_mass = np.zeros_like(self.dropped)
        np.add.at(row_mass, owners, _branch_masses(stack))
        active = row_mass > 0.0
        if not np.all(
            self.dropped[active] + row_mass[active] <= self.options.mass_budget
        ):
            return False
        self.dropped += row_mass
        return True


def denote_trajectory_batch(
    program: Program,
    layout: RegisterLayout,
    amplitudes: np.ndarray,
    binding: ParameterBinding | None = None,
    *,
    options: TrajectoryOptions | None = None,
) -> TrajectoryResult:
    """Apply ``[[P(θ*)]]`` to a stack of pure inputs by branch splitting.

    Each row of the ``(B, d^n)`` input stack is an independent (possibly
    sub-normalized) pure input state; the result's ``owners`` maps every
    output branch back to its input row.  Raises
    :class:`~repro.errors.TrajectoryError` when the ensemble outgrows the
    branch cap — the caller's cue to use the density simulator instead.
    """
    missing = program.qvars() - set(layout.names)
    if missing:
        raise SemanticsError(
            f"the input state does not carry variables {sorted(missing)} used by the program"
        )
    stack = np.asarray(amplitudes, dtype=complex)
    if stack.ndim != 2 or stack.shape[1] != layout.total_dim:
        raise SemanticsError(
            f"batched amplitudes must have shape (B, {layout.total_dim}), got {stack.shape}"
        )
    evaluator = _Evaluator(
        layout,
        binding,
        options if options is not None else TrajectoryOptions(),
        stack.shape[0],
    )
    owners = np.arange(stack.shape[0], dtype=np.intp)
    evaluator._check_cap(stack.shape[0])
    out_stack, out_owners = evaluator.denote(program, stack, owners)
    return TrajectoryResult(
        amplitudes=out_stack,
        owners=out_owners,
        dropped=evaluator.dropped,
        branch_peak=evaluator.peak,
    )
