"""Register layout: named quantum variables as tensor factors.

The language of Section 3 manipulates named quantum variables (``q1``,
``q2``, ...).  The simulator fixes an ordering of those variables once — a
:class:`RegisterLayout`.  An operator acting on a subset of the variables
can be embedded into the full space by tensoring with identities and
permuting tensor factors (:meth:`RegisterLayout.embed_operator`); since the
contraction kernels of :mod:`repro.sim.kernels` landed, that embedding is
the *reference* path used for cross-checking and for callers that genuinely
need the full-space matrix, while the simulators apply local operators
directly to the target axes (:meth:`RegisterLayout.axes_of`).

All variables are qubits (``type(q) = Bool``) by default, matching the VQC
programs of the evaluation; bounded-integer variables of a given dimension
are also supported because the initialization channel of the language is
defined for them.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import DimensionMismatchError, LinalgError

#: LRU memo for embedded operators; keyed by (layout, targets, shape, matrix bytes).
_EMBED_CACHE: OrderedDict = OrderedDict()
_EMBED_CACHE_LIMIT = 4096
#: Operators with more elements than this bypass the cache entirely: building
#: their key would hash (and copy) the full matrix bytes per lookup, which for
#: large matrices costs more than it saves — and the contraction kernels of
#: :mod:`repro.sim.kernels` keep large embeds off the hot path anyway.
_EMBED_CACHE_MAX_OPERATOR_ELEMENTS = 256


@dataclass(frozen=True)
class RegisterLayout:
    """An ordered collection of named quantum variables with their dimensions."""

    names: tuple[str, ...]
    dims: tuple[int, ...]

    def __init__(
        self,
        names: Sequence[str],
        dims: Sequence[int] | Mapping[str, int] | None = None,
    ):
        names = tuple(names)
        if len(set(names)) != len(names):
            raise LinalgError(f"duplicate variable names in layout: {names}")
        if not names:
            raise LinalgError("a register layout needs at least one variable")
        if dims is None:
            resolved = tuple(2 for _ in names)
        elif isinstance(dims, Mapping):
            resolved = tuple(int(dims.get(name, 2)) for name in names)
        else:
            resolved = tuple(int(d) for d in dims)
            if len(resolved) != len(names):
                raise DimensionMismatchError("dims must match names in length")
        for dim in resolved:
            if dim < 2:
                raise LinalgError(f"variable dimension must be at least 2, got {dim}")
        object.__setattr__(self, "names", names)
        object.__setattr__(self, "dims", resolved)
        # Cached eagerly: the simulators read this on every state construction.
        object.__setattr__(self, "_total_dim", math.prod(resolved))

    # -- basic queries ------------------------------------------------------

    @property
    def num_variables(self) -> int:
        """Number of variables (tensor factors)."""
        return len(self.names)

    @property
    def total_dim(self) -> int:
        """Dimension of the full Hilbert space."""
        return self._total_dim

    def index(self, name: str) -> int:
        """Position of a variable in the tensor order."""
        try:
            return self.names.index(name)
        except ValueError:
            raise LinalgError(f"variable {name!r} is not part of this layout") from None

    def dim_of(self, name: str) -> int:
        """Dimension of one variable."""
        return self.dims[self.index(name)]

    def contains(self, names: Iterable[str]) -> bool:
        """Return True when every name is a variable of this layout."""
        return all(name in self.names for name in names)

    def extended(self, name: str, dim: int = 2, *, front: bool = True) -> "RegisterLayout":
        """Return a new layout with an extra variable (ancilla) added.

        The differentiation pipeline adds the ancilla as the *first* tensor
        factor so that the combined observable is ``Z_A ⊗ O`` exactly as in
        Definition 5.2; ``front=False`` appends instead.
        """
        if name in self.names:
            raise LinalgError(f"variable {name!r} already exists in the layout")
        if front:
            return RegisterLayout((name,) + self.names, (dim,) + self.dims)
        return RegisterLayout(self.names + (name,), self.dims + (dim,))

    def restricted(self, names: Sequence[str]) -> "RegisterLayout":
        """Return the layout containing only ``names``, in this layout's order."""
        kept = [name for name in self.names if name in set(names)]
        missing = set(names) - set(kept)
        if missing:
            raise LinalgError(f"variables {sorted(missing)} are not part of this layout")
        return RegisterLayout(tuple(kept), tuple(self.dim_of(name) for name in kept))

    def axes_of(self, targets: Sequence[str]) -> tuple[int, ...]:
        """Return the tensor-axis positions of the target variables.

        Validates that the targets are distinct members of the layout; the
        result is what the contraction kernels of :mod:`repro.sim.kernels`
        consume.  Memoized — the hot loop resolves the same handful of
        target tuples millions of times.
        """
        return _axes_of(self, tuple(targets))

    # -- operator embedding ---------------------------------------------------

    def embed_operator(self, operator: np.ndarray, targets: Sequence[str]) -> np.ndarray:
        """Embed an operator acting on ``targets`` into the full space.

        ``operator`` must act on the tensor product of the target variables in
        the order given by ``targets``; the result acts on the full register.

        This is the *reference* path: the simulators apply local operators
        via :mod:`repro.sim.kernels` without ever materializing the embedded
        matrix, and the kernel tests cross-check against this method.  Small
        operators are memoized with LRU eviction (keyed by the operator's
        bytes and the target names); operators above
        ``_EMBED_CACHE_MAX_OPERATOR_ELEMENTS`` elements bypass the cache so
        that no full large-matrix byte string is ever hashed as a key.
        """
        operator = np.asarray(operator, dtype=complex)
        if operator.size > _EMBED_CACHE_MAX_OPERATOR_ELEMENTS:
            return self._embed_operator_uncached(operator, targets)
        cache_key = (self, tuple(targets), operator.shape, operator.tobytes())
        cached = _EMBED_CACHE.get(cache_key)
        if cached is not None:
            _EMBED_CACHE.move_to_end(cache_key)
            return cached
        embedded = self._embed_operator_uncached(operator, targets)
        while len(_EMBED_CACHE) >= _EMBED_CACHE_LIMIT:
            _EMBED_CACHE.popitem(last=False)
        _EMBED_CACHE[cache_key] = embedded
        return embedded

    def _embed_operator_uncached(self, operator: np.ndarray, targets: Sequence[str]) -> np.ndarray:
        operator = np.asarray(operator, dtype=complex)
        targets = list(targets)
        if len(set(targets)) != len(targets):
            raise LinalgError(f"target variables must be distinct, got {targets}")
        target_dims = [self.dim_of(name) for name in targets]
        expected = int(np.prod(target_dims))
        if operator.shape != (expected, expected):
            raise DimensionMismatchError(
                f"operator shape {operator.shape} does not match target dims {target_dims}"
            )
        if len(targets) == self.num_variables and targets == list(self.names):
            return operator

        # Build the operator on the full space with targets first, identities
        # after, then permute tensor factors into layout order.
        remaining = [name for name in self.names if name not in targets]
        remaining_dim = int(np.prod([self.dim_of(name) for name in remaining])) if remaining else 1
        big = np.kron(operator, np.eye(remaining_dim, dtype=complex))

        permuted_names = targets + remaining
        return self._permute_operator(big, permuted_names)

    def _permute_operator(self, operator: np.ndarray, current_order: Sequence[str]) -> np.ndarray:
        """Reorder the tensor factors of ``operator`` from ``current_order`` to layout order."""
        current_order = list(current_order)
        if current_order == list(self.names):
            return operator
        dims_current = [self.dim_of(name) for name in current_order]
        n = len(current_order)
        tensor = operator.reshape(dims_current + dims_current)
        # Axis i of the target order should come from the position of
        # self.names[i] inside current_order.
        perm = [current_order.index(name) for name in self.names]
        tensor = np.transpose(tensor, perm + [p + n for p in perm])
        total = self.total_dim
        return tensor.reshape(total, total)

    def embed_state(self, state: np.ndarray, targets: Sequence[str]) -> np.ndarray:
        """Embed a density operator on ``targets`` into the full space.

        The remaining variables are placed in ``|0⟩``.  Used to prepare the
        global input state when only part of the register is specified.
        """
        state = np.asarray(state, dtype=complex)
        remaining = [name for name in self.names if name not in set(targets)]
        pieces = [state]
        for name in remaining:
            dim = self.dim_of(name)
            zero = np.zeros((dim, dim), dtype=complex)
            zero[0, 0] = 1.0
            pieces.append(zero)
        big = pieces[0]
        for piece in pieces[1:]:
            big = np.kron(big, piece)
        return self._permute_operator(big, list(targets) + remaining)

    def _resolve_axes(self, targets: tuple[str, ...]) -> tuple[int, ...]:
        if len(set(targets)) != len(targets):
            raise LinalgError(f"target variables must be distinct, got {list(targets)}")
        return tuple(self.index(name) for name in targets)

    def basis_product_state(self, assignment: Mapping[str, int]) -> np.ndarray:
        """Return the basis pure-state *vector* assigning each variable a basis index.

        Variables not mentioned default to ``|0⟩``.
        """
        vector = np.ones(1, dtype=complex)
        for name, dim in zip(self.names, self.dims):
            value = int(assignment.get(name, 0))
            if not 0 <= value < dim:
                raise LinalgError(f"value {value} out of range for variable {name!r}")
            local = np.zeros(dim, dtype=complex)
            local[value] = 1.0
            vector = np.kron(vector, local)
        return vector


@lru_cache(maxsize=4096)
def _axes_of(layout: RegisterLayout, targets: tuple[str, ...]) -> tuple[int, ...]:
    return layout._resolve_axes(targets)
