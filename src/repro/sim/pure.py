"""Batched pure-state (statevector) denotational semantics.

For programs the purity analysis (:mod:`repro.analysis.purity`) certifies
as measurement-free, ``[[P(θ*)]]`` maps pure states to pure states, so the
``O(4^n)`` density representation is redundant: this module evaluates the
defining equations of Figure 1b directly on amplitude vectors —

* over a whole *stack* of inputs at once: a ``(B, d^n)`` array is advanced
  through each gate with one broadcasted contraction
  (:func:`repro.sim.kernels.apply_operator_vector_batch`), which is how the
  derivative fan-out and the training loop's data-point batches amortize
  per-gate numpy dispatch;
* with sub-normalized vectors for partiality: ``abort`` denotes the zero
  vector, whose outer product is exactly the zero partial density operator.

Leading ``q := |0⟩`` resets are evaluated by
:func:`repro.sim.kernels.reset_vector_batch`, which *verifies at runtime*
that the reset variable is unentangled (the static analysis only proves no
earlier statement touched it — the input state could still be entangled)
and raises :class:`~repro.errors.PurityError` otherwise; callers such as
:class:`repro.api.StatevectorBackend` catch that and fall back to the
density simulator.  ``case``/``while``/``+`` raise
:class:`~repro.errors.SemanticsError` — they are exactly what the purity
analysis rejects, so reaching one here means the caller skipped the
analysis.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SemanticsError
from repro.lang.ast import (
    Abort,
    Init,
    Program,
    Seq,
    Skip,
    Sum,
    UnitaryApp,
)
from repro.lang.gates import bound_gate_matrix
from repro.lang.parameters import ParameterBinding
from repro.sim import kernels
from repro.sim.hilbert import RegisterLayout
from repro.sim.statevector import StateVector

__all__ = ["denote_amplitude_batch", "denote_pure"]


def denote_amplitude_batch(
    program: Program,
    layout: RegisterLayout,
    amplitudes: np.ndarray,
    binding: ParameterBinding | None = None,
) -> np.ndarray:
    """Apply ``[[P(θ*)]]`` to a ``(B, d^n)`` stack of pure-state amplitudes.

    Returns the output stack (possibly sub-normalized rows).  The program
    must be measurement-free (see the module docs for the failure modes).
    """
    missing = program.qvars() - set(layout.names)
    if missing:
        raise SemanticsError(
            f"the input state does not carry variables {sorted(missing)} used by the program"
        )
    batch = np.asarray(amplitudes, dtype=complex)
    if batch.ndim != 2 or batch.shape[1] != layout.total_dim:
        raise SemanticsError(
            f"batched amplitudes must have shape (B, {layout.total_dim}), got {batch.shape}"
        )
    return _denote(program, layout, batch, binding)


def _denote(
    program: Program,
    layout: RegisterLayout,
    batch: np.ndarray,
    binding: ParameterBinding | None,
) -> np.ndarray:
    if isinstance(program, Abort):
        return np.zeros_like(batch)
    if isinstance(program, Skip):
        return batch
    if isinstance(program, Init):
        return kernels.reset_vector_batch(batch, layout.dims, layout.index(program.qubit))
    if isinstance(program, UnitaryApp):
        return kernels.apply_operator_vector_batch(
            batch,
            layout.dims,
            layout.axes_of(program.qubits),
            bound_gate_matrix(program.gate, binding),
        )
    if isinstance(program, Seq):
        return _denote(program.second, layout, _denote(program.first, layout, batch, binding), binding)
    if isinstance(program, Sum):
        raise SemanticsError(
            "the additive choice '+' has a multiset semantics; compile the program first"
        )
    raise SemanticsError(
        f"{type(program).__name__} is not statevector-simulable; the purity analysis "
        "(repro.analysis.purity) gates which programs may take the pure-state path"
    )


def denote_pure(
    program: Program,
    state: StateVector,
    binding: ParameterBinding | None = None,
) -> StateVector:
    """Apply ``[[P(θ*)]]`` to a single pure state (batch-of-one convenience)."""
    output = denote_amplitude_batch(
        program, state.layout, state.amplitudes[np.newaxis, :], binding
    )
    return StateVector(state.layout, output[0])
