"""Pure-state (statevector) simulation with measurement sampling.

Density-matrix simulation (:mod:`repro.sim.density`) is the reference
substrate for the semantics because it represents probabilistic branching
exactly.  The statevector simulator here is the cheaper trajectory-based
alternative: it tracks a single pure state, samples measurement outcomes
according to the Born rule, and is used by the shot-based gradient
estimators of Section 7 where the paper's execution model repeats the whole
program many times.

Gates and measurement collapses go through the contraction kernels of
:mod:`repro.sim.kernels` — ``O(2^k · 2^n)`` per k-local operator instead of
the ``O(4^n)`` embedded matrix–vector product.  Sampling calls share the
module-level generator of :mod:`repro.sim.rng` unless an explicit ``rng``
is threaded in, so shot loops pay generator setup once and can be seeded
globally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.errors import DimensionMismatchError, LayoutError, LinalgError
from repro.linalg.measurement import Measurement
from repro.sim import kernels, rng as sim_rng
from repro.sim.hilbert import RegisterLayout


@dataclass
class StateVector:
    """A mutable pure state over a register layout.

    Every reshape of the amplitude array takes its per-variable dimensions
    from the layout (``layout.dims``), never from a qubit assumption — a
    register mixing qubits with qutrits or bounded-integer variables works
    throughout, and a shape that disagrees with the layout raises a
    :class:`~repro.errors.LayoutError` instead of silently reinterpreting
    the amplitudes.
    """

    layout: RegisterLayout
    amplitudes: np.ndarray

    def __init__(self, layout: RegisterLayout, amplitudes: np.ndarray | None = None):
        if amplitudes is None:
            amplitudes = layout.basis_product_state({})
        amplitudes = np.asarray(amplitudes, dtype=complex).reshape(-1)
        if amplitudes.shape[0] != layout.total_dim:
            raise LayoutError(
                f"amplitude vector of length {amplitudes.shape[0]} does not match the "
                f"layout register {dict(zip(layout.names, layout.dims))} "
                f"(total dimension {layout.total_dim})"
            )
        self.layout = layout
        self.amplitudes = amplitudes

    # -- constructors -------------------------------------------------------------

    @classmethod
    def basis_state(cls, layout: RegisterLayout, assignment: Mapping[str, int]) -> "StateVector":
        """Computational basis product state."""
        return cls(layout, layout.basis_product_state(assignment))

    @classmethod
    def from_density(cls, state, *, atol: float = 1e-10) -> "StateVector":
        """Extract the amplitudes of a pure :class:`~repro.sim.density.DensityState`.

        Raises :class:`~repro.errors.PurityError` when the density operator
        has rank > 1 (see :meth:`DensityState.pure_amplitudes`).
        """
        return cls(state.layout, state.pure_amplitudes(atol=atol))

    def copy(self) -> "StateVector":
        """Independent copy of the state."""
        return StateVector(self.layout, self.amplitudes.copy())

    def tensor(self) -> np.ndarray:
        """The amplitudes as an ``n``-axis tensor, one axis per register variable.

        The axis sizes come from ``layout.dims`` — qutrits and
        bounded-integer variables reshape correctly.
        """
        return self.amplitudes.reshape(self.layout.dims)

    def extended(self, variable: str, dim: int = 2, *, front: bool = True) -> "StateVector":
        """Return ``|0⟩_new ⊗ |ψ⟩`` on a layout extended with an ancilla.

        The pure-state analogue of :meth:`DensityState.extended`; the
        differentiation pipeline adds the ancilla as the first tensor factor.
        """
        new_layout = self.layout.extended(variable, dim, front=front)
        zero = np.zeros(dim, dtype=complex)
        zero[0] = 1.0
        if front:
            amplitudes = np.kron(zero, self.amplitudes)
        else:
            amplitudes = np.kron(self.amplitudes, zero)
        return StateVector(new_layout, amplitudes)

    # -- queries --------------------------------------------------------------------

    def norm(self) -> float:
        """Euclidean norm of the amplitude vector."""
        return float(np.linalg.norm(self.amplitudes))

    def density_matrix(self) -> np.ndarray:
        """Return the projector ``|ψ⟩⟨ψ|``."""
        return np.outer(self.amplitudes, np.conj(self.amplitudes))

    def probability_of(self, assignment: Mapping[str, int]) -> float:
        """Probability of observing the given computational-basis assignment."""
        target = self.layout.basis_product_state(assignment)
        return float(abs(np.vdot(target, self.amplitudes)) ** 2)

    def expectation(self, observable: np.ndarray, targets: Sequence[str] | None = None) -> float:
        """Return ``⟨ψ|O|ψ⟩`` for an observable on a subset of variables."""
        observable = np.asarray(observable, dtype=complex)
        if targets is None:
            if observable.shape[0] != self.amplitudes.shape[0]:
                raise DimensionMismatchError("observable dimension does not match register")
            return float(np.real(np.vdot(self.amplitudes, observable @ self.amplitudes)))
        axes = self.layout.axes_of(targets)
        return kernels.expectation_vector(self.amplitudes, self.layout.dims, axes, observable)

    # -- evolution ---------------------------------------------------------------------

    def apply_unitary(self, unitary: np.ndarray, targets: Sequence[str]) -> "StateVector":
        """Apply a unitary acting on the target variables (in place; returns self)."""
        axes = self.layout.axes_of(targets)
        self.amplitudes = kernels.apply_operator_vector(
            self.amplitudes, self.layout.dims, axes, unitary
        )
        return self

    def initialize(self, variable: str, rng: np.random.Generator | None = None) -> "StateVector":
        """Reset one variable to ``|0⟩``.

        Trajectory semantics: the variable is measured in the computational
        basis (collapsing the state) and then rotated/relabelled to ``|0⟩``.
        This reproduces the reset channel in expectation over trajectories.
        """
        rng = sim_rng.resolve(rng)
        dim = self.layout.dim_of(variable)
        measurement = Measurement(
            tuple(_basis_projector(dim, value) for value in range(dim)),
            tuple(range(dim)),
            name=f"reset({variable})",
        )
        outcome = self.measure(measurement, [variable], rng=rng)
        if outcome != 0:
            # Map |outcome⟩ to |0⟩ with a permutation unitary.
            permutation = np.eye(dim, dtype=complex)
            permutation[[0, outcome]] = permutation[[outcome, 0]]
            self.apply_unitary(permutation, [variable])
        return self

    def measure(
        self,
        measurement: Measurement,
        targets: Sequence[str],
        rng: np.random.Generator | None = None,
    ) -> int:
        """Sample a measurement outcome and collapse the state accordingly."""
        rng = sim_rng.resolve(rng)
        axes = self.layout.axes_of(targets)
        probabilities = []
        candidates = []
        for outcome in measurement.outcomes:
            candidate = kernels.apply_operator_vector(
                self.amplitudes, self.layout.dims, axes, measurement.operator(outcome)
            )
            probability = float(np.real(np.vdot(candidate, candidate)))
            probabilities.append(max(probability, 0.0))
            candidates.append(candidate)
        total = sum(probabilities)
        if total <= 1e-15:
            raise LinalgError("cannot measure a state with zero norm")
        weights = np.array(probabilities) / total
        choice = int(rng.choice(len(weights), p=weights))
        outcome = measurement.outcomes[choice]
        collapsed = candidates[choice]
        self.amplitudes = collapsed / np.linalg.norm(collapsed)
        return outcome


def _basis_projector(dim: int, value: int) -> np.ndarray:
    projector = np.zeros((dim, dim), dtype=complex)
    projector[value, value] = 1.0
    return projector
