"""Local tensor-contraction kernels for k-local operators.

The simulation hot path of the paper's execution scheme (Section 7) applies
1–2 qubit gates, measurement branches, reset channels and local-observable
readouts to states over ``n`` variables, over and over, for every program in
the compiled multiset ``{|P'_i|}``.  The historical implementation embedded
every local operator into the full ``2^n × 2^n`` space
(:meth:`repro.sim.hilbert.RegisterLayout.embed_operator`) and then performed
full-space matrix products — ``O(8^n)`` work per gate on a density state,
regardless of how small the gate is.

This module is the replacement: every primitive contracts the k-local
operator directly against the *target axes* of the state tensor.  A state
vector over variables of dimensions ``(d_1, …, d_n)`` is viewed as an
``n``-axis tensor, a density operator as a ``2n``-axis tensor (row axes
first, column axes second); a k-local operator then touches only ``k`` (or
``2k``) of those axes via ``tensordot``.  The costs become

====================  =======================  =====================
primitive             embed path               contraction kernel
====================  =======================  =====================
unitary on |ψ⟩        ``O(4^n)``               ``O(2^k · 2^n)``
unitary on ρ          ``O(8^n)``               ``O(2^k · 4^n)``
Kraus channel on ρ    ``O(K · 8^n)``           ``O(K · 2^k · 4^n)``
tr(Oρ), O k-local     ``O(8^n)``               ``O(4^n)``
====================  =======================  =====================

(The expectation kernel first partial-traces ρ onto the target factors —
one ``O(4^n)`` reduction — and then contracts the ``2^k × 2^k`` observable
against the reduced matrix, never forming ``Oρ``.)

All kernels are layout-agnostic: they take the tuple of per-variable
dimensions and the list of target axis positions, so they work for qubits,
bounded-integer variables and any mixture of the two.  The embedding path is
retained in :mod:`repro.sim.hilbert` as the reference implementation; the
property tests in ``tests/sim/test_kernels.py`` cross-check every kernel
against it on random states and random target subsets.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from contextlib import contextmanager
from typing import Sequence

import numpy as np

from repro.errors import DimensionMismatchError, LinalgError, PurityError

__all__ = [
    "KernelCounters",
    "apply_operator_vector",
    "apply_operator_vector_batch",
    "conjugate_operator_density",
    "apply_kraus_density",
    "count_kernel_ops",
    "reduced_density",
    "expectation_density",
    "expectation_vector",
    "expectation_vector_batch",
    "measure_branch_vector_batch",
    "reset_vector_batch",
    "branch_probabilities_density",
    "two_factor_expectation_density",
    "two_factor_expectation_vector_batch",
]


# -- instrumentation ----------------------------------------------------------
#
# The static cost model (:mod:`repro.analysis.cost`) predicts upper bounds on
# the work these kernels perform.  To make that claim *testable*, every kernel
# can charge an active :class:`KernelCounters` with the same per-primitive
# cost formula the model uses — ``B · e · d^n`` model flops for a batched
# k-local apply with target dimension ``e``, ``2 · e · (d^n)²`` for a density
# conjugation, and so on — plus the peak single-kernel working set in bytes
# (``2 · B · d^n · 16``: input and output stacks of complex128 amplitudes).
# The soundness suite then asserts measured ≤ predicted on random programs.
#
# Counting is off by default and costs one ``None`` check per kernel call.


class KernelCounters:
    """Model-unit operation counters charged by the kernels while active.

    ``flops`` accumulates the model cost units of every kernel invocation;
    ``peak_bytes`` tracks the largest single-invocation working set
    (input + output buffers); ``calls`` counts kernel invocations.
    """

    __slots__ = ("flops", "peak_bytes", "calls")

    def __init__(self) -> None:
        self.flops = 0.0
        self.peak_bytes = 0.0
        self.calls = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"KernelCounters(flops={self.flops:.3g}, "
            f"peak_bytes={self.peak_bytes:.3g}, calls={self.calls})"
        )


_COUNTERS: "KernelCounters | None" = None


def _charge(flops: float, working_elements: float) -> None:
    counters = _COUNTERS
    if counters is None:
        return
    counters.flops += flops
    counters.calls += 1
    working = 2.0 * working_elements * 16.0
    if working > counters.peak_bytes:
        counters.peak_bytes = working


@contextmanager
def count_kernel_ops():
    """Activate kernel op-counting for the dynamic extent of the block.

    Yields the :class:`KernelCounters` the kernels charge.  Not reentrant
    across threads (a single module-global slot): the soundness tests that
    use it run their backend calls single-threaded.
    """
    global _COUNTERS
    previous = _COUNTERS
    _COUNTERS = counters = KernelCounters()
    try:
        yield counters
    finally:
        _COUNTERS = previous


class _Plan:
    """Pre-computed contraction geometry for one ``(dims, axes)`` pair.

    The hot loop applies gates to the same few target tuples millions of
    times; everything that depends only on the layout geometry — validation,
    the axis sort, the operator-permutation indices and the consecutive-axes
    block factorization — is computed once and memoized.
    """

    __slots__ = (
        "dims",
        "axes",
        "n",
        "total",
        "expected",
        "target_dims",
        "sorted_axes",
        "sorted_dims",
        "operator_permutation",
        "blocks",
        "reduce_permutation",
        "other_dim",
    )

    def __init__(self, dims: tuple[int, ...], axes: tuple[int, ...]):
        if len(set(axes)) != len(axes):
            raise LinalgError(f"target axes must be distinct, got {list(axes)}")
        for axis in axes:
            if not 0 <= axis < len(dims):
                raise LinalgError(f"axis {axis} out of range for {len(dims)} variables")
        self.dims = dims
        self.axes = axes
        self.n = len(dims)
        self.total = math.prod(dims)
        self.target_dims = tuple(dims[a] for a in axes)
        self.expected = math.prod(self.target_dims)
        k = len(axes)
        order = sorted(range(k), key=axes.__getitem__)
        self.sorted_axes = tuple(axes[i] for i in order)
        self.sorted_dims = tuple(self.target_dims[i] for i in order)
        if order == list(range(k)):
            self.operator_permutation = None
        else:
            self.operator_permutation = tuple(order) + tuple(k + i for i in order)
        # Consecutive (sorted) axes admit the (left, target, right) block view:
        # one broadcasted matmul per side, no transposition of the big state.
        # Empty targets are the degenerate scalar case (a 1×1 operator scales
        # the state), which the embed path also supported.
        if not axes:
            self.blocks = (1, 1, self.total)
        elif all(b == a + 1 for a, b in zip(self.sorted_axes, self.sorted_axes[1:])):
            first, last = self.sorted_axes[0], self.sorted_axes[-1]
            self.blocks = (
                math.prod(dims[:first]),
                math.prod(dims[first : last + 1]),
                math.prod(dims[last + 1 :]),
            )
        else:
            self.blocks = None
        # Partial-trace geometry: targets (in given order) first, the rest after.
        other = [i for i in range(self.n) if i not in axes]
        reduce_perm = list(axes) + other
        self.reduce_permutation = tuple(reduce_perm) + tuple(self.n + p for p in reduce_perm)
        self.other_dim = math.prod(dims[o] for o in other)

    def validate_operator(self, operator: np.ndarray) -> np.ndarray:
        """Check that the operator matches the target dimensions."""
        operator = np.asarray(operator, dtype=complex)
        if operator.shape != (self.expected, self.expected):
            raise DimensionMismatchError(
                f"operator shape {operator.shape} does not match target dims "
                f"{list(self.target_dims)}"
            )
        return operator

    def prepare_operator(self, operator: np.ndarray) -> np.ndarray:
        """Validate the operator and permute it onto the sorted target axes."""
        operator = self.validate_operator(operator)
        if self.operator_permutation is not None:
            operator = (
                operator.reshape(self.target_dims + self.target_dims)
                .transpose(self.operator_permutation)
                .reshape(self.expected, self.expected)
            )
        return operator


#: FIFO-evicting memo for contraction plans.  Hits do not reorder entries (a
#: ``move_to_end`` per gate application would tax the hottest lookup in the
#: simulator); a working set anywhere near the limit does not occur in
#: practice, so evicting the oldest insertion is enough to stay bounded
#: without ever flushing the whole cache.
_PLAN_CACHE: "OrderedDict[tuple, _Plan]" = OrderedDict()
_PLAN_CACHE_LIMIT = 8192


def _plan(dims: Sequence[int], axes: Sequence[int]) -> _Plan:
    key = (tuple(dims), tuple(axes))
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        plan = _Plan(*key)
        while len(_PLAN_CACHE) >= _PLAN_CACHE_LIMIT:
            _PLAN_CACHE.popitem(last=False)
        _PLAN_CACHE[key] = plan
    return plan


def _contract(tensor: np.ndarray, op_tensor: np.ndarray, axes: tuple[int, ...], k: int) -> np.ndarray:
    """Contract the ``2k``-axis operator tensor onto ``axes`` of ``tensor``.

    ``tensordot`` moves the contracted axes to the front (in the order the
    axes were listed); ``moveaxis`` puts them back where they came from, so
    the result has the same axis order as the input.
    """
    moved = np.tensordot(op_tensor, tensor, axes=(tuple(range(k, 2 * k)), axes))
    return np.moveaxis(moved, tuple(range(k)), axes)


# -- state-vector kernels -----------------------------------------------------


def apply_operator_vector(
    amplitudes: np.ndarray,
    dims: Sequence[int],
    axes: Sequence[int],
    operator: np.ndarray,
) -> np.ndarray:
    """Apply a k-local operator to a state vector: ``|ψ⟩ ↦ (A ⊗ I)|ψ⟩``.

    ``O(2^k · 2^n)`` instead of the ``O(4^n)`` full-space matrix–vector
    product of the embedding path.
    """
    plan = _plan(dims, axes)
    operator = plan.prepare_operator(operator)
    psi = np.asarray(amplitudes, dtype=complex)
    _charge(plan.expected * plan.total, plan.total)
    if plan.blocks is not None:
        left, target, right = plan.blocks
        return np.matmul(operator, psi.reshape(left, target, right)).reshape(-1)
    k = len(plan.sorted_axes)
    psi = _contract(
        psi.reshape(plan.dims),
        operator.reshape(plan.sorted_dims + plan.sorted_dims),
        plan.sorted_axes,
        k,
    )
    return psi.reshape(-1)


def expectation_vector(
    amplitudes: np.ndarray,
    dims: Sequence[int],
    axes: Sequence[int],
    observable: np.ndarray,
) -> float:
    """Return ``⟨ψ|(O ⊗ I)|ψ⟩`` for a k-local observable without embedding."""
    applied = apply_operator_vector(amplitudes, dims, axes, observable)
    _charge(math.prod(dims), math.prod(dims))
    return float(np.real(np.vdot(np.asarray(amplitudes, dtype=complex).reshape(-1), applied)))


# -- batched state-vector kernels ---------------------------------------------
#
# The derivative fan-out and the data-point batches of the training loop run
# the *same* program at the *same* parameter point over a stack of input
# vectors.  These kernels advance a stack of ``B`` statevectors shaped
# ``(B, d^n)`` through one gate with a single broadcasted contraction —
# ``O(B · 2^k · 2^n)`` total, one numpy dispatch per gate instead of ``B``.


def _as_batch(amplitudes: np.ndarray, total: int) -> np.ndarray:
    batch = np.asarray(amplitudes, dtype=complex)
    if batch.ndim != 2 or batch.shape[1] != total:
        raise DimensionMismatchError(
            f"batched amplitudes must have shape (B, {total}), got {batch.shape}"
        )
    return batch


def apply_operator_vector_batch(
    amplitudes: np.ndarray,
    dims: Sequence[int],
    axes: Sequence[int],
    operator: np.ndarray,
) -> np.ndarray:
    """Apply a k-local operator to a ``(B, d^n)`` stack of statevectors.

    One broadcasted contraction advances the whole stack:
    ``O(B · 2^k · 2^n)``, with a single numpy call per gate.
    """
    plan = _plan(dims, axes)
    operator = plan.prepare_operator(operator)
    psi = _as_batch(amplitudes, plan.total)
    batch = psi.shape[0]
    _charge(batch * plan.expected * plan.total, batch * plan.total)
    if plan.blocks is not None:
        left, target, right = plan.blocks
        return np.matmul(operator, psi.reshape(batch, left, target, right)).reshape(
            batch, plan.total
        )
    k = len(plan.sorted_axes)
    shifted = tuple(a + 1 for a in plan.sorted_axes)
    psi = _contract(
        psi.reshape((batch,) + plan.dims),
        operator.reshape(plan.sorted_dims + plan.sorted_dims),
        shifted,
        k,
    )
    return psi.reshape(batch, plan.total)


def expectation_vector_batch(
    amplitudes: np.ndarray,
    dims: Sequence[int],
    axes: Sequence[int],
    observable: np.ndarray,
) -> np.ndarray:
    """Return ``⟨ψ_b|(O ⊗ I)|ψ_b⟩`` for every row of a ``(B, d^n)`` stack."""
    psi = _as_batch(amplitudes, math.prod(dims))
    applied = apply_operator_vector_batch(psi, dims, axes, observable)
    _charge(psi.shape[0] * psi.shape[1], psi.shape[0] * psi.shape[1])
    return np.real(np.einsum("bi,bi->b", np.conj(psi), applied))


def two_factor_expectation_vector_batch(
    amplitudes: np.ndarray,
    lead_dim: int,
    lead_operator: np.ndarray,
    rest_operator: np.ndarray,
) -> np.ndarray:
    """Return ``⟨ψ_b|(A ⊗ O)|ψ_b⟩`` per row, ``A`` on the leading tensor factor.

    The pure-state form of :func:`two_factor_expectation_density`: with
    ``ψ = Σ_a |a⟩ ⊗ |ψ_a⟩`` the readout is ``Σ_{a,c} A[a,c] ⟨ψ_a|O|ψ_c⟩`` —
    the ``(lead_dim·d) × (lead_dim·d)`` Kronecker product is never formed.
    """
    lead_operator = np.asarray(lead_operator, dtype=complex)
    rest_operator = np.asarray(rest_operator, dtype=complex)
    if lead_operator.shape != (lead_dim, lead_dim):
        raise DimensionMismatchError("leading operator does not match the leading dimension")
    rest_dim = rest_operator.shape[0]
    psi = _as_batch(amplitudes, lead_dim * rest_dim).reshape(-1, lead_dim, rest_dim)
    _charge(
        psi.shape[0] * lead_dim * rest_dim * (lead_dim + rest_dim),
        psi.shape[0] * lead_dim * rest_dim,
    )
    applied = np.einsum("rj,bcj->bcr", rest_operator, psi)
    return np.real(np.einsum("ac,bar,bcr->b", lead_operator, np.conj(psi), applied))


def measure_branch_vector_batch(
    amplitudes: np.ndarray,
    dims: Sequence[int],
    axes: Sequence[int],
    operators: Sequence[np.ndarray],
) -> list[np.ndarray]:
    """Split a ``(B, d^n)`` stack into per-outcome sub-normalized stacks.

    For a measurement ``{M_m}`` on the target axes, outcome ``m``'s stack is
    ``M_m`` applied to every row: each input branch ``|ψ_b⟩`` contributes
    the sub-normalized branch ``M_m|ψ_b⟩`` whose squared norm is that
    branch's Born-rule probability mass, and summing the outer products of
    all outcome stacks reproduces the density semantics of the measurement
    exactly.  One broadcasted contraction per outcome — ``O(K · B · 2^k ·
    2^n)`` total for ``K`` outcomes, the pure-state counterpart of the
    ``O(K · 2^k · 4^n)`` density branch channels.
    """
    return [
        apply_operator_vector_batch(amplitudes, dims, axes, operator)
        for operator in operators
    ]


def reset_vector_batch(
    amplitudes: np.ndarray,
    dims: Sequence[int],
    axis: int,
    *,
    atol: float = 1e-10,
) -> np.ndarray:
    """Apply the reset channel ``E_{q→0}`` to a stack of pure states.

    ``E_{q→0}(|ψ⟩⟨ψ|) = |0⟩⟨0|_q ⊗ tr_q(|ψ⟩⟨ψ|)`` is pure exactly when the
    reset variable is unentangled with the rest of the register.  Writing
    ``ψ`` as the ``d_q × d_rest`` amplitude matrix ``M`` (rows indexed by the
    reset variable), the marginal ``tr_q = M† M`` has rank 1 iff
    ``tr(G²) = (tr G)²`` for the small Gram matrix ``G = M M†`` — a
    ``O(d_q² · d_rest)`` check.  Rows that violate it (beyond ``atol``,
    relative to ``(tr G)²``) raise :class:`~repro.errors.PurityError`; the
    purity-aware backends catch that and fall back to the density simulator.

    The surviving pure output is ``|0⟩_q ⊗ v`` with ``v`` the dominant row
    direction of ``M``, rescaled to preserve the squared norm (the branch
    probability mass of a partial state).  All-zero rows (aborted branches)
    pass through as zero vectors.
    """
    plan = _plan(dims, (axis,))
    psi = _as_batch(amplitudes, plan.total)
    batch = psi.shape[0]
    dim = dims[axis]
    _charge(batch * dim * plan.total, batch * plan.total)
    # View each row as (d_q, rest) with the reset variable's axis leading.
    tensor = np.moveaxis(psi.reshape((batch,) + plan.dims), axis + 1, 1)
    rest_shape = tensor.shape[2:]
    matrix = tensor.reshape(batch, dim, -1)
    gram = np.einsum("bdr,ber->bde", matrix, np.conj(matrix))
    trace = np.real(np.einsum("bdd->b", gram))
    trace_sq = np.real(np.einsum("bde,bed->b", gram, gram))
    defect = trace**2 - trace_sq
    scale = np.maximum(trace**2, np.finfo(float).tiny)
    impure = defect > atol * scale
    if np.any(impure):
        raise PurityError(
            f"reset of axis {axis} on an entangled pure state: the marginal of "
            f"{int(np.count_nonzero(impure))} of {batch} stacked states has rank > 1 "
            f"(relative purity defect up to {float(np.max(defect / scale)):.2e})"
        )
    # Dominant row per state: all rows are parallel, so any nonzero row spans
    # the marginal; take the largest for numerical stability.
    row_norms_sq = np.real(np.einsum("bdr,bdr->bd", matrix, np.conj(matrix)))
    dominant = np.argmax(row_norms_sq, axis=1)
    rows = matrix[np.arange(batch), dominant]
    dominant_sq = row_norms_sq[np.arange(batch), dominant]
    safe = np.maximum(dominant_sq, np.finfo(float).tiny)
    rescale = np.sqrt(trace / safe)
    rescale[trace <= 0.0] = 0.0
    result = np.zeros_like(matrix)
    result[:, 0, :] = rows * rescale[:, None]
    result = np.moveaxis(result.reshape((batch, dim) + rest_shape), 1, axis + 1)
    return result.reshape(batch, plan.total)


# -- density-matrix kernels ----------------------------------------------------


def conjugate_operator_density(
    matrix: np.ndarray,
    dims: Sequence[int],
    axes: Sequence[int],
    operator: np.ndarray,
) -> np.ndarray:
    """Return ``(A ⊗ I) ρ (A ⊗ I)†`` for a k-local ``A`` (unitary or not).

    Covers unitary conjugation and single measurement branches
    ``M_m ρ M_m†``.  The operator is applied once to the row axes and once
    (conjugated) to the column axes of the ``2n``-axis state tensor —
    ``O(2^k · 4^n)`` instead of ``O(8^n)``.
    """
    plan = _plan(dims, axes)
    operator = plan.prepare_operator(operator)
    total = plan.total
    rho = np.asarray(matrix, dtype=complex)
    _charge(2.0 * plan.expected * total * total, total * total)
    if plan.blocks is not None:
        # Fast path: both conjugations are broadcasted matmuls on reshaped
        # views — (A ⊗ I)ρ groups the row index as (left, target, right·D),
        # the right conjugation groups the column index as (D·left, target,
        # right).  No axis transposition of the big state ever happens.
        left, target, right = plan.blocks
        rows = np.matmul(operator, rho.reshape(left, target, right * total))
        cols = np.matmul(np.conj(operator), rows.reshape(total * left, target, right))
        return cols.reshape(total, total)
    k = len(plan.sorted_axes)
    op_tensor = operator.reshape(plan.sorted_dims + plan.sorted_dims)
    rho = rho.reshape(plan.dims + plan.dims)
    rho = _contract(rho, op_tensor, plan.sorted_axes, k)
    rho = _contract(rho, np.conj(op_tensor), tuple(plan.n + a for a in plan.sorted_axes), k)
    return rho.reshape(total, total)


def apply_kraus_density(
    matrix: np.ndarray,
    dims: Sequence[int],
    axes: Sequence[int],
    kraus_operators: Sequence[np.ndarray],
) -> np.ndarray:
    """Apply a Kraus-form channel ``ρ ↦ Σ_k E_k ρ E_k†`` acting on the target axes."""
    result: np.ndarray | None = None
    for operator in kraus_operators:
        term = conjugate_operator_density(matrix, dims, axes, operator)
        result = term if result is None else result + term
    if result is None:
        raise LinalgError("a Kraus channel needs at least one operator")
    return result


def reduced_density(matrix: np.ndarray, dims: Sequence[int], axes: Sequence[int]) -> np.ndarray:
    """Partial-trace ρ onto the target factors (in the order of ``axes``).

    One ``O(4^n)`` transpose+trace; the result is the ``d_t × d_t`` reduced
    density matrix on which k-local readouts become ``O(4^k)``.
    """
    plan = _plan(dims, axes)
    _charge(plan.total * plan.total, plan.total * plan.total)
    rho = np.asarray(matrix, dtype=complex).reshape(plan.dims + plan.dims)
    rho = rho.transpose(plan.reduce_permutation)
    rho = rho.reshape(plan.expected, plan.other_dim, plan.expected, plan.other_dim)
    return np.trace(rho, axis1=1, axis2=3)


def expectation_density(
    matrix: np.ndarray,
    dims: Sequence[int],
    axes: Sequence[int],
    observable: np.ndarray,
) -> float:
    """Return ``tr((O ⊗ I) ρ)`` for a k-local observable without forming ``Oρ``."""
    plan = _plan(dims, axes)
    observable = plan.validate_operator(observable)
    reduced = reduced_density(matrix, dims, axes)
    _charge(plan.expected * plan.expected, plan.expected * plan.expected)
    return float(np.real(np.einsum("ij,ji->", observable, reduced)))


def branch_probabilities_density(
    matrix: np.ndarray,
    dims: Sequence[int],
    axes: Sequence[int],
    operators: Sequence[np.ndarray],
) -> list[float]:
    """Return ``tr(M_m ρ M_m†)`` for every operator of a measurement.

    The state is partial-traced onto the target factors once; each outcome
    then costs one ``O(8^k)`` product of small matrices — the Born-rule
    distribution never touches the full space.
    """
    plan = _plan(dims, axes)
    reduced = reduced_density(matrix, dims, axes)
    probabilities = []
    for operator in operators:
        operator = plan.validate_operator(operator)
        _charge(
            plan.expected**3 + plan.expected**2, plan.expected * plan.expected
        )
        effect = operator.conj().T @ operator
        probabilities.append(float(np.real(np.einsum("ij,ji->", effect, reduced))))
    return probabilities


def two_factor_expectation_density(
    matrix: np.ndarray,
    lead_dim: int,
    lead_operator: np.ndarray,
    rest_operator: np.ndarray,
) -> float:
    """Return ``tr((A ⊗ O) ρ)`` where ``A`` acts on the leading tensor factor.

    The derivative readout of Definition 5.2 contracts ``Z_A ⊗ O`` against
    the output state whose ancilla is the *first* factor; this kernel does
    that contraction blockwise — ``Σ_{a,b} A[a,b] · tr(O ρ_{b,a})`` over the
    ``lead_dim × lead_dim`` grid of blocks — without ever forming the
    ``(lead_dim·d) × (lead_dim·d)`` Kronecker product.
    """
    matrix = np.asarray(matrix, dtype=complex)
    lead_operator = np.asarray(lead_operator, dtype=complex)
    rest_operator = np.asarray(rest_operator, dtype=complex)
    if lead_operator.shape != (lead_dim, lead_dim):
        raise DimensionMismatchError("leading operator does not match the leading dimension")
    rest_dim = rest_operator.shape[0]
    if matrix.shape != (lead_dim * rest_dim, lead_dim * rest_dim):
        raise DimensionMismatchError("state dimension does not match the operator factors")
    total = lead_dim * rest_dim
    _charge(float(total) * total, float(total) * total)
    blocks = matrix.reshape(lead_dim, rest_dim, lead_dim, rest_dim)
    value = np.einsum("ab,ij,bjai->", lead_operator, rest_operator, blocks)
    return float(np.real(value))
