"""Quantum simulation substrate.

The paper's evaluation runs its compiled programs on a classical simulator;
this package is that simulator.  It provides

* :mod:`repro.sim.hilbert` — the register layout mapping named quantum
  variables to tensor factors and embedding local operators into the global
  space;
* :mod:`repro.sim.density` — an exact density-matrix simulator, the
  execution substrate used by the denotational and observable semantics;
* :mod:`repro.sim.statevector` — a pure-state simulator with trajectory
  sampling, used for shot-based estimation;
* :mod:`repro.sim.trajectories` — branch-splitting trajectory evaluation of
  measuring programs: a ``(B, d^n)`` ensemble of sub-normalized pure
  branches, split per measurement outcome, pruned, coalesced and
  ``ε``-truncated with a certified error bound;
* :mod:`repro.sim.kernels` — local tensor-contraction kernels that apply
  k-local operators directly to the target axes of the state tensor, the
  hot path of every simulator above (``embed_operator`` remains as the
  cross-checked reference);
* :mod:`repro.sim.rng` — the shared default random generator threaded
  through every sampling call;
* :mod:`repro.sim.shots` — Chernoff-bound shot counts and sampling
  estimators of observable expectations (Section 7).
"""

from repro.sim.hilbert import RegisterLayout
from repro.sim.density import DensityState
from repro.sim.statevector import StateVector
from repro.sim.rng import seed as seed_default_rng
from repro.sim.shots import (
    chernoff_shot_count,
    estimate_expectation,
    estimate_expectation_from_samples,
)

__all__ = [
    "RegisterLayout",
    "DensityState",
    "StateVector",
    "chernoff_shot_count",
    "estimate_expectation",
    "estimate_expectation_from_samples",
    "seed_default_rng",
]
