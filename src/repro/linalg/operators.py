"""Operator predicates and utilities (paper Section 2.1, Appendix A.1).

Hermitian conjugation, unitarity and Hermiticity checks, the Löwner order
used to state the observable bound ``−I ⊑ O ⊑ I``, commutators, partial
traces, and Kronecker-product helpers shared by the simulator.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import DimensionMismatchError, LinalgError

ATOL = 1e-9


def dagger(matrix: np.ndarray) -> np.ndarray:
    """Return the Hermitian conjugate ``A†`` of ``A``."""
    return np.conj(np.asarray(matrix, dtype=complex)).T


def is_hermitian(matrix: np.ndarray, *, atol: float = 1e-8) -> bool:
    """Return True when ``A = A†``."""
    array = np.asarray(matrix, dtype=complex)
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        return False
    return bool(np.allclose(array, array.conj().T, atol=atol))


def is_unitary(matrix: np.ndarray, *, atol: float = 1e-8) -> bool:
    """Return True when ``U†U = UU† = I``."""
    array = np.asarray(matrix, dtype=complex)
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        return False
    identity = np.eye(array.shape[0])
    return bool(
        np.allclose(array.conj().T @ array, identity, atol=atol)
        and np.allclose(array @ array.conj().T, identity, atol=atol)
    )


def is_positive_semidefinite(matrix: np.ndarray, *, atol: float = 1e-8) -> bool:
    """Return True when ``A`` is Hermitian with non-negative eigenvalues."""
    if not is_hermitian(matrix, atol=atol):
        return False
    eigenvalues = np.linalg.eigvalsh(np.asarray(matrix, dtype=complex))
    return bool(eigenvalues.min() >= -atol)


def loewner_leq(a: np.ndarray, b: np.ndarray, *, atol: float = 1e-8) -> bool:
    """Return True when ``A ⊑ B`` in the Löwner order (``B − A`` is PSD)."""
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if a.shape != b.shape:
        raise DimensionMismatchError("Löwner comparison requires equal shapes")
    return is_positive_semidefinite(b - a, atol=atol)


def commutator(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Return ``[A, B] = AB − BA``."""
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    return a @ b - b @ a


def anticommutator(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Return ``{A, B} = AB + BA``."""
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    return a @ b + b @ a


def operator_norm(matrix: np.ndarray) -> float:
    """Return the spectral norm (largest singular value) of the operator."""
    return float(np.linalg.norm(np.asarray(matrix, dtype=complex), ord=2))


def frobenius_inner(a: np.ndarray, b: np.ndarray) -> complex:
    """Return the Hilbert–Schmidt inner product ``tr(A† B)``."""
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if a.shape != b.shape:
        raise DimensionMismatchError("inner product requires equal shapes")
    return complex(np.trace(a.conj().T @ b))


def kron_all(matrices: Sequence[np.ndarray] | Iterable[np.ndarray]) -> np.ndarray:
    """Return the Kronecker product of all matrices, left to right.

    The empty product is the 1×1 identity, the unit of the tensor product.
    """
    result = np.eye(1, dtype=complex)
    for matrix in matrices:
        result = np.kron(result, np.asarray(matrix, dtype=complex))
    return result


def partial_trace(
    matrix: np.ndarray,
    keep: Sequence[int],
    dims: Sequence[int],
) -> np.ndarray:
    """Trace out all tensor factors not listed in ``keep``.

    ``dims`` lists the dimension of each tensor factor in order; ``keep``
    lists (in the desired output order) the indices of factors to retain.
    """
    matrix = np.asarray(matrix, dtype=complex)
    dims = list(dims)
    total = int(np.prod(dims))
    if matrix.shape != (total, total):
        raise DimensionMismatchError(
            f"operator shape {matrix.shape} does not match factor dims {dims}"
        )
    keep = list(keep)
    if any(not 0 <= k < len(dims) for k in keep):
        raise LinalgError(f"keep indices {keep} out of range for {len(dims)} factors")
    if len(set(keep)) != len(keep):
        raise LinalgError("keep indices must be distinct")

    num_factors = len(dims)
    reshaped = matrix.reshape(dims + dims)
    traced = reshaped
    # Trace out the factors not kept, from the highest index down so that
    # earlier axis positions stay valid.
    removed = sorted(set(range(num_factors)) - set(keep), reverse=True)
    current_dims = list(dims)
    for factor in removed:
        axis_row = factor
        axis_col = factor + len(current_dims)
        traced = np.trace(traced, axis1=axis_row, axis2=axis_col)
        current_dims.pop(factor)
    kept_sorted = sorted(keep)
    out_dim = int(np.prod([dims[k] for k in kept_sorted])) if kept_sorted else 1
    result = traced.reshape(out_dim, out_dim)
    if kept_sorted == keep:
        return result
    # Permute the kept factors into the requested order.
    perm = [kept_sorted.index(k) for k in keep]
    kept_dims = [dims[k] for k in kept_sorted]
    tensor = result.reshape(kept_dims + kept_dims)
    tensor = np.transpose(tensor, perm + [p + len(kept_dims) for p in perm])
    final_dim = int(np.prod([dims[k] for k in keep]))
    return tensor.reshape(final_dim, final_dim)
