"""Pure states, mixed states, and density operators (paper Section 2.2, A.2).

Pure states are unit column vectors ``|ψ⟩`` represented as one-dimensional
complex NumPy arrays.  Mixed states are represented by density operators,
i.e. trace-one positive semidefinite matrices; partial density operators
(trace at most one) appear as outputs of trace-non-increasing
superoperators, in particular of programs that may abort.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import DimensionMismatchError, LinalgError

#: Absolute tolerance used by all validation predicates in this package.
ATOL = 1e-9


def ket(amplitudes: Sequence[complex]) -> np.ndarray:
    """Build a normalized pure state from a sequence of amplitudes.

    The amplitudes are normalized to unit Euclidean norm.  A zero vector is
    rejected because it does not represent a physical state.
    """
    vector = np.asarray(amplitudes, dtype=complex).reshape(-1)
    norm = np.linalg.norm(vector)
    if norm < ATOL:
        raise LinalgError("cannot normalize the zero vector into a state")
    return vector / norm


def bra(state: np.ndarray) -> np.ndarray:
    """Return the Hermitian conjugate (row vector) of a pure state."""
    return np.conj(np.asarray(state, dtype=complex).reshape(-1))


def basis_state(index: int, dim: int) -> np.ndarray:
    """Return the computational basis vector ``|index⟩`` in dimension ``dim``."""
    if not 0 <= index < dim:
        raise LinalgError(f"basis index {index} out of range for dimension {dim}")
    vector = np.zeros(dim, dtype=complex)
    vector[index] = 1.0
    return vector


def computational_basis(num_qubits: int) -> list[np.ndarray]:
    """Return the list of all computational basis states on ``num_qubits`` qubits."""
    dim = 2**num_qubits
    return [basis_state(i, dim) for i in range(dim)]


def zero() -> np.ndarray:
    """The single-qubit state ``|0⟩``."""
    return basis_state(0, 2)


def one() -> np.ndarray:
    """The single-qubit state ``|1⟩``."""
    return basis_state(1, 2)


def plus() -> np.ndarray:
    """The single-qubit state ``|+⟩ = (|0⟩ + |1⟩)/√2``."""
    return ket([1.0, 1.0])


def minus() -> np.ndarray:
    """The single-qubit state ``|−⟩ = (|0⟩ − |1⟩)/√2``."""
    return ket([1.0, -1.0])


def bell_state(kind: int = 0) -> np.ndarray:
    """Return one of the four Bell states.

    ``kind`` selects among ``|β00⟩, |β01⟩, |β10⟩, |β11⟩`` in the usual
    ordering; ``kind=0`` is the EPR state ``(|00⟩ + |11⟩)/√2`` used in the
    paper's preliminaries.
    """
    if kind not in (0, 1, 2, 3):
        raise LinalgError(f"Bell state index must be in 0..3, got {kind}")
    x = kind & 1
    z = (kind >> 1) & 1
    first = basis_state(0b00 + x, 4)
    second = basis_state(0b10 + (1 - x), 4)
    return ket(first + (-1.0) ** z * second)


def pure_density(state: np.ndarray) -> np.ndarray:
    """Return the density operator ``|ψ⟩⟨ψ|`` of a pure state."""
    vector = np.asarray(state, dtype=complex).reshape(-1)
    return np.outer(vector, np.conj(vector))


def mixed_density(ensemble: Iterable[tuple[float, np.ndarray]]) -> np.ndarray:
    """Return the density operator of an ensemble ``{(p_i, |ψ_i⟩)}``.

    Probabilities must be non-negative and sum to at most one (sub-normalized
    ensembles yield partial density operators).
    """
    terms = list(ensemble)
    if not terms:
        raise LinalgError("an ensemble must contain at least one state")
    total = 0.0
    dim = np.asarray(terms[0][1]).reshape(-1).shape[0]
    rho = np.zeros((dim, dim), dtype=complex)
    for probability, state in terms:
        if probability < -ATOL:
            raise LinalgError(f"ensemble probability {probability} is negative")
        vector = np.asarray(state, dtype=complex).reshape(-1)
        if vector.shape[0] != dim:
            raise DimensionMismatchError(
                f"ensemble states live in different dimensions ({vector.shape[0]} vs {dim})"
            )
        rho += probability * pure_density(vector)
        total += probability
    if total > 1.0 + 1e-6:
        raise LinalgError(f"ensemble probabilities sum to {total} > 1")
    return rho


def density(state_or_matrix: np.ndarray) -> np.ndarray:
    """Coerce a pure state vector or a density matrix into a density matrix.

    One-dimensional inputs are interpreted as pure states; two-dimensional
    inputs are validated as (partial) density operators and returned as-is.
    """
    array = np.asarray(state_or_matrix, dtype=complex)
    if array.ndim == 1:
        return pure_density(array)
    if array.ndim == 2:
        if not is_partial_density_operator(array):
            raise LinalgError("matrix is not a partial density operator")
        return array
    raise LinalgError(f"cannot interpret an array of rank {array.ndim} as a state")


def is_density_operator(matrix: np.ndarray, *, atol: float = 1e-7) -> bool:
    """Return True when ``matrix`` is positive semidefinite with unit trace."""
    return _is_psd_with_trace(matrix, expect_unit_trace=True, atol=atol)


def is_partial_density_operator(matrix: np.ndarray, *, atol: float = 1e-7) -> bool:
    """Return True when ``matrix`` is positive semidefinite with trace at most one."""
    return _is_psd_with_trace(matrix, expect_unit_trace=False, atol=atol)


def _is_psd_with_trace(matrix: np.ndarray, *, expect_unit_trace: bool, atol: float) -> bool:
    array = np.asarray(matrix, dtype=complex)
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        return False
    if not np.allclose(array, array.conj().T, atol=atol):
        return False
    eigenvalues = np.linalg.eigvalsh(array)
    if eigenvalues.min() < -atol:
        return False
    trace = float(np.real(np.trace(array)))
    if expect_unit_trace:
        return abs(trace - 1.0) <= atol
    return trace <= 1.0 + atol


def purity(rho: np.ndarray) -> float:
    """Return ``tr(ρ²)``; equals one exactly for pure states."""
    rho = np.asarray(rho, dtype=complex)
    return float(np.real(np.trace(rho @ rho)))


def fidelity(rho: np.ndarray, sigma: np.ndarray) -> float:
    """Uhlmann fidelity ``F(ρ, σ) = (tr√(√ρ σ √ρ))²`` between density operators."""
    rho = np.asarray(rho, dtype=complex)
    sigma = np.asarray(sigma, dtype=complex)
    if rho.shape != sigma.shape:
        raise DimensionMismatchError("fidelity requires operators of equal dimension")
    sqrt_rho = _matrix_sqrt(rho)
    inner = _matrix_sqrt(sqrt_rho @ sigma @ sqrt_rho)
    value = float(np.real(np.trace(inner)) ** 2)
    return min(max(value, 0.0), 1.0 + 1e-9)


def trace_distance(rho: np.ndarray, sigma: np.ndarray) -> float:
    """Trace distance ``½‖ρ − σ‖₁`` between two (partial) density operators."""
    rho = np.asarray(rho, dtype=complex)
    sigma = np.asarray(sigma, dtype=complex)
    if rho.shape != sigma.shape:
        raise DimensionMismatchError("trace distance requires operators of equal dimension")
    eigenvalues = np.linalg.eigvalsh(rho - sigma)
    return float(0.5 * np.abs(eigenvalues).sum())


def _matrix_sqrt(matrix: np.ndarray) -> np.ndarray:
    eigenvalues, eigenvectors = np.linalg.eigh(matrix)
    eigenvalues = np.clip(eigenvalues, 0.0, None)
    return (eigenvectors * np.sqrt(eigenvalues)) @ eigenvectors.conj().T


def random_pure_state(num_qubits: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """Sample a Haar-random pure state on ``num_qubits`` qubits."""
    rng = rng if rng is not None else np.random.default_rng()
    dim = 2**num_qubits
    raw = rng.normal(size=dim) + 1j * rng.normal(size=dim)
    return ket(raw)


def random_density_operator(
    num_qubits: int,
    rank: int | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Sample a random density operator of the given rank (full rank by default)."""
    rng = rng if rng is not None else np.random.default_rng()
    dim = 2**num_qubits
    rank = dim if rank is None else rank
    if not 1 <= rank <= dim:
        raise LinalgError(f"rank must be in 1..{dim}, got {rank}")
    raw = rng.normal(size=(dim, rank)) + 1j * rng.normal(size=(dim, rank))
    rho = raw @ raw.conj().T
    return rho / np.real(np.trace(rho))
