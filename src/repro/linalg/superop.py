"""Superoperators in Kraus form (paper Sections 2.2 and A.3).

A :class:`Superoperator` is a completely positive map given by a finite list
of Kraus operators ``{E_k}``; it acts on density operators as
``E(ρ) = Σ_k E_k ρ E_k†``.  The class also exposes the
Schrödinger–Heisenberg dual ``E*`` (Kraus form ``Σ_k E_k† · E_k``), which the
soundness proof of the Sequence rule uses to move a program across the
observable (Lemma D.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.errors import DimensionMismatchError, LinalgError
from repro.linalg.operators import is_positive_semidefinite, loewner_leq


@dataclass(frozen=True, eq=False)
class Superoperator:
    """A completely positive map represented by Kraus operators.

    Equality compares the maps themselves (via their matrix representation),
    not the particular Kraus decomposition.
    """

    kraus_operators: tuple[np.ndarray, ...]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Superoperator):
            return NotImplemented
        if (self.input_dim, self.output_dim) != (other.input_dim, other.output_dim):
            return False
        return bool(
            np.allclose(self.matrix_representation(), other.matrix_representation())
        )

    def __hash__(self) -> int:
        return hash((self.input_dim, self.output_dim, len(self.kraus_operators)))

    def __init__(self, kraus_operators: Iterable[np.ndarray]):
        operators = tuple(np.asarray(k, dtype=complex) for k in kraus_operators)
        if not operators:
            raise LinalgError("a superoperator needs at least one Kraus operator")
        shape = operators[0].shape
        if len(shape) != 2:
            raise LinalgError("Kraus operators must be matrices")
        for op in operators:
            if op.shape != shape:
                raise DimensionMismatchError("all Kraus operators must share one shape")
        object.__setattr__(self, "kraus_operators", operators)

    # -- basic properties -------------------------------------------------

    @property
    def input_dim(self) -> int:
        """Dimension of the input Hilbert space."""
        return self.kraus_operators[0].shape[1]

    @property
    def output_dim(self) -> int:
        """Dimension of the output Hilbert space."""
        return self.kraus_operators[0].shape[0]

    def __call__(self, rho: np.ndarray) -> np.ndarray:
        return self.apply(rho)

    def apply(self, rho: np.ndarray) -> np.ndarray:
        """Apply the map to a (partial) density operator."""
        rho = np.asarray(rho, dtype=complex)
        if rho.shape != (self.input_dim, self.input_dim):
            raise DimensionMismatchError(
                f"state dimension {rho.shape} does not match superoperator input "
                f"dimension {self.input_dim}"
            )
        result = np.zeros((self.output_dim, self.output_dim), dtype=complex)
        for op in self.kraus_operators:
            result += op @ rho @ op.conj().T
        return result

    # -- algebra -----------------------------------------------------------

    def compose(self, earlier: "Superoperator") -> "Superoperator":
        """Return the composition ``self ∘ earlier`` (``earlier`` acts first)."""
        if earlier.output_dim != self.input_dim:
            raise DimensionMismatchError("superoperator composition dimension mismatch")
        return Superoperator(
            tuple(a @ b for a in self.kraus_operators for b in earlier.kraus_operators)
        )

    def then(self, later: "Superoperator") -> "Superoperator":
        """Return the composition ``later ∘ self`` (``self`` acts first)."""
        return later.compose(self)

    def add(self, other: "Superoperator") -> "Superoperator":
        """Return the completely positive sum ``E + F`` (union of Kraus sets)."""
        if (self.input_dim, self.output_dim) != (other.input_dim, other.output_dim):
            raise DimensionMismatchError("superoperator sum dimension mismatch")
        return Superoperator(self.kraus_operators + other.kraus_operators)

    def tensor(self, other: "Superoperator") -> "Superoperator":
        """Return the tensor product ``E ⊗ F``."""
        return Superoperator(
            tuple(np.kron(a, b) for a in self.kraus_operators for b in other.kraus_operators)
        )

    def scale(self, factor: float) -> "Superoperator":
        """Scale the map by a non-negative factor (scales each Kraus by √factor)."""
        if factor < 0:
            raise LinalgError("superoperators can only be scaled by non-negative factors")
        root = np.sqrt(factor)
        return Superoperator(tuple(root * op for op in self.kraus_operators))

    def dual(self) -> "Superoperator":
        """Return the Schrödinger–Heisenberg dual ``E*`` with Kraus form Σ E_k†·E_k."""
        return Superoperator(tuple(op.conj().T for op in self.kraus_operators))

    def apply_dual(self, observable: np.ndarray) -> np.ndarray:
        """Apply the dual map to an observable: ``E*(A) = Σ_k E_k† A E_k``."""
        observable = np.asarray(observable, dtype=complex)
        if observable.shape != (self.output_dim, self.output_dim):
            raise DimensionMismatchError("observable dimension does not match output space")
        result = np.zeros((self.input_dim, self.input_dim), dtype=complex)
        for op in self.kraus_operators:
            result += op.conj().T @ observable @ op
        return result

    # -- validation --------------------------------------------------------

    def kraus_sum(self) -> np.ndarray:
        """Return ``Σ_k E_k† E_k``, the operator governing trace behaviour."""
        total = np.zeros((self.input_dim, self.input_dim), dtype=complex)
        for op in self.kraus_operators:
            total += op.conj().T @ op
        return total

    def is_trace_preserving(self, *, atol: float = 1e-8) -> bool:
        """Return True when ``Σ_k E_k† E_k = I`` (a quantum channel)."""
        return bool(np.allclose(self.kraus_sum(), np.eye(self.input_dim), atol=atol))

    def is_trace_nonincreasing(self, *, atol: float = 1e-8) -> bool:
        """Return True when ``Σ_k E_k† E_k ⊑ I`` (an admissible superoperator)."""
        return loewner_leq(self.kraus_sum(), np.eye(self.input_dim), atol=atol)

    def choi_matrix(self) -> np.ndarray:
        """Return the (unnormalized) Choi matrix ``Σ_ij |i⟩⟨j| ⊗ E(|i⟩⟨j|)``."""
        dim = self.input_dim
        choi = np.zeros((dim * self.output_dim, dim * self.output_dim), dtype=complex)
        for i in range(dim):
            for j in range(dim):
                unit = np.zeros((dim, dim), dtype=complex)
                unit[i, j] = 1.0
                choi += np.kron(unit, self.apply(unit))
        return choi

    def is_completely_positive(self, *, atol: float = 1e-7) -> bool:
        """Return True when the Choi matrix is positive semidefinite.

        Always true by construction for Kraus-form maps; exposed so tests can
        validate superoperators assembled by other code paths.
        """
        return is_positive_semidefinite(self.choi_matrix(), atol=atol)

    def matrix_representation(self) -> np.ndarray:
        """Return the natural (column-stacking) matrix representation of the map."""
        result = np.zeros(
            (self.output_dim * self.output_dim, self.input_dim * self.input_dim),
            dtype=complex,
        )
        for op in self.kraus_operators:
            result += np.kron(np.conj(op), op)
        return result


# -- constructors -----------------------------------------------------------


def unitary_channel(unitary: np.ndarray) -> Superoperator:
    """The channel ``ρ ↦ UρU†``."""
    return Superoperator((np.asarray(unitary, dtype=complex),))


def identity_channel(dim: int) -> Superoperator:
    """The identity channel on a ``dim``-dimensional space."""
    return Superoperator((np.eye(dim, dtype=complex),))


def zero_channel(dim: int) -> Superoperator:
    """The zero map ``ρ ↦ 0`` (semantics of ``abort``)."""
    return Superoperator((np.zeros((dim, dim), dtype=complex),))


def initialization_channel(dim: int) -> Superoperator:
    """The reset channel ``E_{q→0}(ρ) = Σ_n |0⟩⟨n| ρ |n⟩⟨0|`` on one variable."""
    kraus = []
    for n in range(dim):
        op = np.zeros((dim, dim), dtype=complex)
        op[0, n] = 1.0
        kraus.append(op)
    return Superoperator(tuple(kraus))


def measurement_branch_channel(kraus_operator: np.ndarray) -> Superoperator:
    """The (trace-decreasing) branch map ``E_m(ρ) = M_m ρ M_m†``."""
    return Superoperator((np.asarray(kraus_operator, dtype=complex),))


def superoperator_sum(superoperators: Sequence[Superoperator]) -> Superoperator:
    """Return the completely positive sum of several superoperators."""
    if not superoperators:
        raise LinalgError("cannot sum an empty sequence of superoperators")
    result = superoperators[0]
    for extra in superoperators[1:]:
        result = result.add(extra)
    return result
