"""Quantum linear-algebra substrate.

This package implements the mathematical preliminaries of Section 2 and
Appendix A of the paper: pure and mixed states, unitary operators and common
gates, superoperators in Kraus form together with their
Schrödinger–Heisenberg duals, quantum measurements, and observables.

Everything is expressed with dense NumPy arrays; the library targets the
small- to medium-sized systems used in the paper's evaluation, where exact
simulation is the intended execution model.
"""

from repro.linalg.states import (
    ket,
    bra,
    basis_state,
    computational_basis,
    zero,
    one,
    plus,
    minus,
    bell_state,
    density,
    pure_density,
    mixed_density,
    is_density_operator,
    is_partial_density_operator,
    purity,
    fidelity,
    trace_distance,
    random_pure_state,
    random_density_operator,
)
from repro.linalg.operators import (
    dagger,
    is_hermitian,
    is_unitary,
    is_positive_semidefinite,
    loewner_leq,
    commutator,
    anticommutator,
    partial_trace,
    operator_norm,
    frobenius_inner,
    kron_all,
)
from repro.linalg.gates import (
    IDENTITY,
    PAULI_X,
    PAULI_Y,
    PAULI_Z,
    HADAMARD,
    S_GATE,
    T_GATE,
    CNOT,
    CZ,
    SWAP,
    pauli,
    rotation_matrix,
    coupling_matrix,
    controlled,
    controlled_rotation_matrix,
    controlled_coupling_matrix,
    rotation_generator,
)
from repro.linalg.superop import (
    Superoperator,
    unitary_channel,
    identity_channel,
    zero_channel,
    initialization_channel,
    measurement_branch_channel,
)
from repro.linalg.measurement import (
    Measurement,
    computational_measurement,
    projective_measurement_from_observable,
)
from repro.linalg.observables import (
    Observable,
    pauli_observable,
    projector_observable,
    diagonal_observable,
)

__all__ = [
    # states
    "ket",
    "bra",
    "basis_state",
    "computational_basis",
    "zero",
    "one",
    "plus",
    "minus",
    "bell_state",
    "density",
    "pure_density",
    "mixed_density",
    "is_density_operator",
    "is_partial_density_operator",
    "purity",
    "fidelity",
    "trace_distance",
    "random_pure_state",
    "random_density_operator",
    # operators
    "dagger",
    "is_hermitian",
    "is_unitary",
    "is_positive_semidefinite",
    "loewner_leq",
    "commutator",
    "anticommutator",
    "partial_trace",
    "operator_norm",
    "frobenius_inner",
    "kron_all",
    # gates
    "IDENTITY",
    "PAULI_X",
    "PAULI_Y",
    "PAULI_Z",
    "HADAMARD",
    "S_GATE",
    "T_GATE",
    "CNOT",
    "CZ",
    "SWAP",
    "pauli",
    "rotation_matrix",
    "coupling_matrix",
    "controlled",
    "controlled_rotation_matrix",
    "controlled_coupling_matrix",
    "rotation_generator",
    # superoperators
    "Superoperator",
    "unitary_channel",
    "identity_channel",
    "zero_channel",
    "initialization_channel",
    "measurement_branch_channel",
    # measurements
    "Measurement",
    "computational_measurement",
    "projective_measurement_from_observable",
    # observables
    "Observable",
    "pauli_observable",
    "projector_observable",
    "diagonal_observable",
]
