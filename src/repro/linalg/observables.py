"""Observables (paper Section 5, Eq. 5.1–5.2).

An observable is a Hermitian operator ``O``.  Its expectation on a (partial)
density operator ρ is ``tr(Oρ)``, the quantity whose derivative the entire
differentiation machinery computes.  The paper normalizes observables to
``−I ⊑ O ⊑ I`` so that the shot-based estimation analysis of Section 7
applies; :meth:`Observable.is_bounded` checks that condition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DimensionMismatchError, LinalgError
from repro.linalg.gates import pauli
from repro.linalg.measurement import Measurement, projective_measurement_from_observable
from repro.linalg.operators import is_hermitian, kron_all, loewner_leq


@dataclass(frozen=True, eq=False)
class Observable:
    """A Hermitian operator with an optional human-readable name."""

    matrix: np.ndarray
    name: str = "O"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Observable):
            return NotImplemented
        return self.matrix.shape == other.matrix.shape and bool(
            np.allclose(self.matrix, other.matrix)
        )

    def __hash__(self) -> int:
        return hash((self.name, self.matrix.shape))

    def __init__(self, matrix: np.ndarray, name: str = "O"):
        array = np.asarray(matrix, dtype=complex)
        if not is_hermitian(array):
            raise LinalgError("observables must be Hermitian")
        object.__setattr__(self, "matrix", array)
        object.__setattr__(self, "name", name)

    @property
    def dim(self) -> int:
        """Dimension of the space the observable acts on."""
        return self.matrix.shape[0]

    def num_qubits(self) -> int:
        """Number of qubits the observable acts on."""
        n = int(round(np.log2(self.dim)))
        if 2**n != self.dim:
            raise LinalgError(f"observable dimension {self.dim} is not a power of two")
        return n

    def expectation(self, rho: np.ndarray) -> float:
        """Return ``tr(Oρ)`` for a (partial) density operator ρ."""
        rho = np.asarray(rho, dtype=complex)
        if rho.shape != self.matrix.shape:
            raise DimensionMismatchError(
                f"state dimension {rho.shape} does not match observable dimension "
                f"{self.matrix.shape}"
            )
        return float(np.real(np.trace(self.matrix @ rho)))

    def is_bounded(self, *, atol: float = 1e-8) -> bool:
        """Check the paper's normalization ``−I ⊑ O ⊑ I`` (Eq. 5.2)."""
        identity = np.eye(self.dim)
        return loewner_leq(-identity, self.matrix, atol=atol) and loewner_leq(
            self.matrix, identity, atol=atol
        )

    def tensor(self, other: "Observable") -> "Observable":
        """Return the product observable ``self ⊗ other``."""
        return Observable(np.kron(self.matrix, other.matrix), name=f"{self.name}⊗{other.name}")

    def scaled(self, factor: float) -> "Observable":
        """Return the observable multiplied by a real factor."""
        return Observable(self.matrix * float(factor), name=f"{factor}*{self.name}")

    def spectral_measurement(self) -> tuple[Measurement, list[float]]:
        """Return the projective measurement and eigenvalues realizing the observable."""
        return projective_measurement_from_observable(self.matrix)

    def spectral_radius(self) -> float:
        """Return ``max_m |λ_m|``, used to bound shot counts for unnormalized observables."""
        return float(np.abs(np.linalg.eigvalsh(self.matrix)).max())


def pauli_observable(label: str) -> Observable:
    """Build a tensor-product Pauli observable from a label such as ``"ZIXZ"``."""
    label = label.upper()
    if not label:
        raise LinalgError("a Pauli label must contain at least one letter")
    matrices = []
    for letter in label:
        matrices.append(pauli(letter))
    return Observable(kron_all(matrices), name=label)


def projector_observable(index: int, num_qubits: int, name: str | None = None) -> Observable:
    """Observable projecting onto a single computational basis state."""
    dim = 2**num_qubits
    if not 0 <= index < dim:
        raise LinalgError(f"basis index {index} out of range for {num_qubits} qubits")
    matrix = np.zeros((dim, dim), dtype=complex)
    matrix[index, index] = 1.0
    return Observable(matrix, name=name or f"|{index}⟩⟨{index}|")


def diagonal_observable(values: np.ndarray | list[float], name: str = "diag") -> Observable:
    """Observable that is diagonal in the computational basis."""
    diag = np.asarray(values, dtype=float).reshape(-1)
    return Observable(np.diag(diag.astype(complex)), name=name)
