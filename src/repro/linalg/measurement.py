"""Quantum measurements ``{M_m}`` (paper Sections 2.3 and A.4).

A measurement is a finite family of linear operators satisfying the
completeness relation ``Σ_m M_m† M_m = I``.  Measuring a state ρ yields
outcome ``m`` with probability ``tr(M_m ρ M_m†)``, after which the state
collapses to ``M_m ρ M_m† / p_m``.  The ``case`` and bounded ``while``
statements of the language are driven by such measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import DimensionMismatchError, LinalgError
from repro.linalg.superop import Superoperator, measurement_branch_channel


@dataclass(frozen=True, eq=False)
class Measurement:
    """A quantum measurement given by Kraus operators indexed by outcome labels."""

    operators: tuple[np.ndarray, ...]
    outcomes: tuple[int, ...]
    name: str = "M"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Measurement):
            return NotImplemented
        if self.outcomes != other.outcomes or self.name != other.name:
            return False
        return all(
            a.shape == b.shape and np.allclose(a, b)
            for a, b in zip(self.operators, other.operators)
        )

    def __hash__(self) -> int:
        return hash((self.name, self.outcomes, self.operators[0].shape))

    def __init__(
        self,
        operators: Iterable[np.ndarray] | Mapping[int, np.ndarray],
        outcomes: Sequence[int] | None = None,
        name: str = "M",
    ):
        if isinstance(operators, Mapping):
            if outcomes is not None:
                raise LinalgError("outcomes must not be passed twice")
            outcomes = tuple(sorted(operators))
            matrices = tuple(np.asarray(operators[m], dtype=complex) for m in outcomes)
        else:
            matrices = tuple(np.asarray(op, dtype=complex) for op in operators)
            outcomes = tuple(range(len(matrices))) if outcomes is None else tuple(outcomes)
        if not matrices:
            raise LinalgError("a measurement needs at least one operator")
        if len(matrices) != len(outcomes):
            raise LinalgError("number of outcomes must match number of operators")
        if len(set(outcomes)) != len(outcomes):
            raise LinalgError("measurement outcomes must be distinct")
        shape = matrices[0].shape
        for matrix in matrices:
            if matrix.shape != shape:
                raise DimensionMismatchError("all measurement operators must share one shape")
            if matrix.shape[0] != matrix.shape[1]:
                raise LinalgError("measurement operators must be square")
        object.__setattr__(self, "operators", matrices)
        object.__setattr__(self, "outcomes", outcomes)
        object.__setattr__(self, "name", name)

    # -- structure ---------------------------------------------------------

    @property
    def dim(self) -> int:
        """Dimension of the measured space."""
        return self.operators[0].shape[0]

    @property
    def num_outcomes(self) -> int:
        """Number of possible measurement outcomes."""
        return len(self.operators)

    def num_qubits(self) -> int:
        """Number of qubits the measurement acts on (its dimension must be 2^n)."""
        n = int(round(np.log2(self.dim)))
        if 2**n != self.dim:
            raise LinalgError(f"measurement dimension {self.dim} is not a power of two")
        return n

    def operator(self, outcome: int) -> np.ndarray:
        """Return the Kraus operator ``M_m`` associated with ``outcome``."""
        try:
            index = self.outcomes.index(outcome)
        except ValueError:
            raise LinalgError(f"unknown measurement outcome {outcome}") from None
        return self.operators[index]

    def branch_channel(self, outcome: int) -> Superoperator:
        """Return the superoperator ``E_m = M_m · M_m†`` of one branch."""
        return measurement_branch_channel(self.operator(outcome))

    def is_complete(self, *, atol: float = 1e-8) -> bool:
        """Return True when ``Σ_m M_m† M_m = I``."""
        total = np.zeros((self.dim, self.dim), dtype=complex)
        for matrix in self.operators:
            total += matrix.conj().T @ matrix
        return bool(np.allclose(total, np.eye(self.dim), atol=atol))

    def is_projective(self, *, atol: float = 1e-8) -> bool:
        """Return True when every operator is an orthogonal projector."""
        for matrix in self.operators:
            if not np.allclose(matrix @ matrix, matrix, atol=atol):
                return False
            if not np.allclose(matrix, matrix.conj().T, atol=atol):
                return False
        return True

    # -- statistics ----------------------------------------------------------

    def probabilities(self, rho: np.ndarray) -> dict[int, float]:
        """Return the outcome distribution on input state ρ."""
        rho = np.asarray(rho, dtype=complex)
        if rho.shape != (self.dim, self.dim):
            raise DimensionMismatchError("state dimension does not match measurement")
        result = {}
        for outcome, matrix in zip(self.outcomes, self.operators):
            result[outcome] = float(np.real(np.trace(matrix @ rho @ matrix.conj().T)))
        return result

    def post_measurement_state(self, rho: np.ndarray, outcome: int) -> tuple[float, np.ndarray]:
        """Return ``(p_m, M_m ρ M_m† / p_m)`` for the given outcome.

        When the outcome has zero probability the (sub-normalized) zero state
        is returned together with probability zero.
        """
        matrix = self.operator(outcome)
        unnormalized = matrix @ np.asarray(rho, dtype=complex) @ matrix.conj().T
        probability = float(np.real(np.trace(unnormalized)))
        if probability <= 1e-15:
            return 0.0, np.zeros_like(unnormalized)
        return probability, unnormalized / probability

    def sample(self, rho: np.ndarray, rng: np.random.Generator | None = None) -> int:
        """Sample one outcome according to the Born rule."""
        rng = rng if rng is not None else np.random.default_rng()
        probabilities = self.probabilities(rho)
        outcomes = list(probabilities)
        weights = np.clip(np.array([probabilities[m] for m in outcomes]), 0.0, None)
        total = weights.sum()
        if total <= 0:
            raise LinalgError("cannot sample a measurement on the zero state")
        weights = weights / total
        return int(rng.choice(outcomes, p=weights))


def computational_measurement(num_qubits: int = 1) -> Measurement:
    """The projective measurement in the computational basis of ``num_qubits`` qubits."""
    dim = 2**num_qubits
    operators = []
    for index in range(dim):
        projector = np.zeros((dim, dim), dtype=complex)
        projector[index, index] = 1.0
        operators.append(projector)
    return Measurement(tuple(operators), tuple(range(dim)), name=f"M_comp{num_qubits}")


def projective_measurement_from_observable(observable: np.ndarray) -> tuple[Measurement, list[float]]:
    """Spectrally decompose an observable into a projective measurement.

    Returns the measurement whose operators are the eigenprojectors of the
    observable together with the list of eigenvalues (one per outcome), so
    that ``tr(Oρ) = Σ_m λ_m tr(M_m ρ M_m†)`` as in Eq. (5.1).
    """
    observable = np.asarray(observable, dtype=complex)
    if not np.allclose(observable, observable.conj().T, atol=1e-8):
        raise LinalgError("observables must be Hermitian")
    eigenvalues, eigenvectors = np.linalg.eigh(observable)
    # Group (numerically) equal eigenvalues into a single projector.
    groups: list[tuple[float, list[int]]] = []
    for index, value in enumerate(eigenvalues):
        for position, (existing, members) in enumerate(groups):
            if abs(existing - value) < 1e-9:
                members.append(index)
                break
        else:
            groups.append((float(value), [index]))
    operators = []
    values = []
    for value, members in groups:
        projector = np.zeros_like(observable)
        for index in members:
            vector = eigenvectors[:, index].reshape(-1, 1)
            projector += vector @ vector.conj().T
        operators.append(projector)
        values.append(value)
    measurement = Measurement(tuple(operators), tuple(range(len(operators))), name="M_spec")
    return measurement, values
