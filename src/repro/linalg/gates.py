"""Concrete gate matrices (paper Sections 2.2, 3.1, and Definition 6.1).

The module provides the fixed gates used throughout the paper (Pauli
matrices, Hadamard, CNOT, ...), the classically parameterized single-qubit
rotations ``R_σ(θ) = exp(−iθσ/2)``, the two-qubit coupling gates
``R_{σ⊗σ}(θ) = exp(−iθ σ⊗σ/2)``, and the controlled rotations
``C_R_σ(θ) = |0⟩⟨0| ⊗ R_σ(θ) + |1⟩⟨1| ⊗ R_σ(θ+π)`` that appear in the
differentiation gadget ``R'_σ`` of Definition 6.1.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LinalgError

IDENTITY = np.eye(2, dtype=complex)
PAULI_X = np.array([[0, 1], [1, 0]], dtype=complex)
PAULI_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
PAULI_Z = np.array([[1, 0], [0, -1]], dtype=complex)
HADAMARD = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2)
S_GATE = np.array([[1, 0], [0, 1j]], dtype=complex)
T_GATE = np.array([[1, 0], [0, np.exp(1j * np.pi / 4)]], dtype=complex)
CNOT = np.array(
    [
        [1, 0, 0, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
        [0, 0, 1, 0],
    ],
    dtype=complex,
)
CZ = np.diag([1, 1, 1, -1]).astype(complex)
SWAP = np.array(
    [
        [1, 0, 0, 0],
        [0, 0, 1, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
    ],
    dtype=complex,
)

_PAULI_BY_NAME = {"I": IDENTITY, "X": PAULI_X, "Y": PAULI_Y, "Z": PAULI_Z}

#: The rotation axes supported by the paper's code-transformation rules.
SINGLE_QUBIT_AXES = ("X", "Y", "Z")
#: The coupling axes supported by the paper's code-transformation rules.
COUPLING_AXES = ("XX", "YY", "ZZ")


def pauli(name: str) -> np.ndarray:
    """Return the Pauli matrix (or identity) named ``I``, ``X``, ``Y`` or ``Z``."""
    try:
        return _PAULI_BY_NAME[name.upper()].copy()
    except KeyError:
        raise LinalgError(f"unknown Pauli name {name!r}") from None


def rotation_generator(axis: str) -> np.ndarray:
    """Return the Hermitian generator σ of ``R_σ`` / ``R_{σ⊗σ}`` for ``axis``.

    ``axis`` is one of ``X``, ``Y``, ``Z`` (single qubit) or ``XX``, ``YY``,
    ``ZZ`` (two-qubit coupling).  All generators square to the identity,
    which is the property the differentiation gadget relies on (Lemma D.1).
    """
    axis = axis.upper()
    if axis in SINGLE_QUBIT_AXES:
        return pauli(axis)
    if axis in COUPLING_AXES:
        single = pauli(axis[0])
        return np.kron(single, single)
    raise LinalgError(f"unknown rotation axis {axis!r}")


def rotation_matrix(axis: str, theta: float) -> np.ndarray:
    """Single-qubit Pauli rotation ``R_σ(θ) = cos(θ/2) I − i sin(θ/2) σ``."""
    axis = axis.upper()
    if axis not in SINGLE_QUBIT_AXES:
        raise LinalgError(f"single-qubit rotation axis must be X, Y or Z, got {axis!r}")
    sigma = pauli(axis)
    return np.cos(theta / 2) * IDENTITY - 1j * np.sin(theta / 2) * sigma


def coupling_matrix(axis: str, theta: float) -> np.ndarray:
    """Two-qubit coupling ``R_{σ⊗σ}(θ) = cos(θ/2) I − i sin(θ/2) σ⊗σ``."""
    axis = axis.upper()
    if axis not in COUPLING_AXES:
        raise LinalgError(f"coupling axis must be XX, YY or ZZ, got {axis!r}")
    sigma2 = rotation_generator(axis)
    return np.cos(theta / 2) * np.eye(4, dtype=complex) - 1j * np.sin(theta / 2) * sigma2


def controlled(unitary: np.ndarray, *, control_value: int = 1) -> np.ndarray:
    """Return the controlled version of ``unitary`` with a single control qubit.

    The control qubit is the first tensor factor.  When ``control_value`` is
    one the gate acts as ``|0⟩⟨0|⊗I + |1⟩⟨1|⊗U``; when zero the roles of the
    control values are swapped.
    """
    unitary = np.asarray(unitary, dtype=complex)
    if unitary.ndim != 2 or unitary.shape[0] != unitary.shape[1]:
        raise LinalgError("controlled() requires a square matrix")
    dim = unitary.shape[0]
    identity = np.eye(dim, dtype=complex)
    proj0 = np.array([[1, 0], [0, 0]], dtype=complex)
    proj1 = np.array([[0, 0], [0, 1]], dtype=complex)
    if control_value == 1:
        return np.kron(proj0, identity) + np.kron(proj1, unitary)
    if control_value == 0:
        return np.kron(proj0, unitary) + np.kron(proj1, identity)
    raise LinalgError(f"control_value must be 0 or 1, got {control_value}")


def controlled_rotation_matrix(axis: str, theta: float) -> np.ndarray:
    """The gadget gate ``C_R_σ(θ) = |0⟩⟨0|⊗R_σ(θ) + |1⟩⟨1|⊗R_σ(θ+π)``.

    This is the single extra gate (Definition 6.1, Eq. 6.2) that replaces the
    two circuits of the phase-shift rule: the ancilla control selects between
    the original rotation and the rotation shifted by π.
    """
    proj0 = np.array([[1, 0], [0, 0]], dtype=complex)
    proj1 = np.array([[0, 0], [0, 1]], dtype=complex)
    return np.kron(proj0, rotation_matrix(axis, theta)) + np.kron(
        proj1, rotation_matrix(axis, theta + np.pi)
    )


def controlled_coupling_matrix(axis: str, theta: float) -> np.ndarray:
    """The two-qubit analogue ``C_R_{σ⊗σ}(θ)`` of :func:`controlled_rotation_matrix`."""
    proj0 = np.array([[1, 0], [0, 0]], dtype=complex)
    proj1 = np.array([[0, 0], [0, 1]], dtype=complex)
    return np.kron(proj0, coupling_matrix(axis, theta)) + np.kron(
        proj1, coupling_matrix(axis, theta + np.pi)
    )
