"""Parser for the concrete surface syntax.

A hand-written tokenizer and recursive-descent parser that accepts exactly
the language produced by :mod:`repro.lang.pretty`.  The parser is used by
tests (round-trip properties), by the examples (programs written as text),
and indirectly by the "#lines" metric which requires a well-defined concrete
syntax.

Grammar (EBNF)::

    program   ::= statement (';' statement)* [';']
    statement ::= 'abort' '[' qubits ']'
                | 'skip'  '[' qubits ']'
                | qubits ':=' rhs
                | 'case' NAME '[' qubits ']' '=' branch+ 'end'
                | 'while' '(' INT ')' NAME '[' qubits ']' '=' INT 'do' program 'done'
                | block ('+' block)+
    rhs       ::= '|0>'
                | NAME ['(' angle ')'] '[' qubits ']'
    branch    ::= INT '->' block
    block     ::= '{' program '}'
    qubits    ::= NAME (',' NAME)*
    angle     ::= NAME | NUMBER

Measurement names resolve to computational-basis measurements on the listed
qubits by default; other measurements can be supplied through the
``measurements`` argument of :func:`parse_program`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import ParseError
from repro.lang.ast import Abort, Case, Init, Program, Skip, Sum, UnitaryApp, While
from repro.lang.builder import seq
from repro.lang.gates import (
    FIXED_GATE_REGISTRY,
    ControlledCoupling,
    ControlledRotation,
    Coupling,
    Gate,
    Rotation,
)
from repro.lang.parameters import Parameter
from repro.linalg.measurement import Measurement, computational_measurement

_TOKEN_SPEC = [
    ("KET0", r"\|0>"),
    ("ASSIGN", r":="),
    ("ARROW", r"->"),
    ("NUMBER", r"-?\d+\.\d+(e[+-]?\d+)?|-?\d+e[+-]?\d+|-?\d+"),
    ("NAME", r"[A-Za-z_][A-Za-z_0-9]*"),
    ("LBRACKET", r"\["),
    ("RBRACKET", r"\]"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("LBRACE", r"\{"),
    ("RBRACE", r"\}"),
    ("COMMA", r","),
    ("SEMI", r";"),
    ("EQUALS", r"="),
    ("PLUS", r"\+"),
    ("WS", r"[ \t\r\n]+"),
    ("COMMENT", r"//[^\n]*"),
]
_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))

_KEYWORDS = {"abort", "skip", "case", "end", "while", "do", "done"}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    kind: str
    text: str
    line: int
    column: int


def tokenize(source: str) -> list[Token]:
    """Split source text into tokens, skipping whitespace and ``//`` comments."""
    tokens: list[Token] = []
    line = 1
    line_start = 0
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            column = position - line_start + 1
            raise ParseError(f"unexpected character {source[position]!r} at {line}:{column}")
        kind = match.lastgroup or ""
        text = match.group()
        if kind not in ("WS", "COMMENT"):
            column = match.start() - line_start + 1
            if kind == "NAME" and text in _KEYWORDS:
                kind = text.upper()
            tokens.append(Token(kind, text, line, column))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = match.start() + text.rfind("\n") + 1
        position = match.end()
    tokens.append(Token("EOF", "", line, len(source) - line_start + 1))
    return tokens


class _Parser:
    def __init__(self, tokens: Sequence[Token], measurements: Mapping[str, Measurement]):
        self._tokens = list(tokens)
        self._index = 0
        self._measurements = dict(measurements)

    # -- token helpers --------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._index + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != "EOF":
            self._index += 1
        return token

    def _expect(self, kind: str) -> Token:
        token = self._peek()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind} but found {token.kind}({token.text!r}) "
                f"at {token.line}:{token.column}"
            )
        return self._advance()

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(f"{message} at {token.line}:{token.column} (near {token.text!r})")

    # -- grammar --------------------------------------------------------------

    def parse_program(self) -> Program:
        program = self._parse_sequence(terminators=("EOF",))
        self._expect("EOF")
        return program

    def _parse_sequence(self, terminators: tuple[str, ...]) -> Program:
        statements = [self._parse_statement()]
        while True:
            if self._peek().kind == "SEMI":
                self._advance()
                if self._peek().kind in terminators:
                    break
                statements.append(self._parse_statement())
            elif self._peek().kind in terminators:
                break
            else:
                raise self._error("expected ';' or end of block")
        return seq(statements)

    def _parse_statement(self) -> Program:
        token = self._peek()
        if token.kind == "ABORT":
            self._advance()
            return Abort(self._parse_bracketed_qubits())
        if token.kind == "SKIP":
            self._advance()
            return Skip(self._parse_bracketed_qubits())
        if token.kind == "CASE":
            return self._parse_case()
        if token.kind == "WHILE":
            return self._parse_while()
        if token.kind == "LBRACE":
            return self._parse_sum()
        if token.kind == "NAME":
            return self._parse_assignment()
        raise self._error("expected a statement")

    def _parse_bracketed_qubits(self) -> tuple[str, ...]:
        self._expect("LBRACKET")
        qubits = [self._expect("NAME").text]
        while self._peek().kind == "COMMA":
            self._advance()
            qubits.append(self._expect("NAME").text)
        self._expect("RBRACKET")
        return tuple(qubits)

    def _parse_assignment(self) -> Program:
        qubits = [self._expect("NAME").text]
        while self._peek().kind == "COMMA":
            self._advance()
            qubits.append(self._expect("NAME").text)
        self._expect("ASSIGN")
        if self._peek().kind == "KET0":
            self._advance()
            if len(qubits) != 1:
                raise self._error("initialization assigns |0> to exactly one variable")
            return Init(qubits[0])
        gate = self._parse_gate()
        targets = self._parse_bracketed_qubits()
        if tuple(qubits) != targets:
            raise self._error(
                f"assignment targets {tuple(qubits)} differ from gate operands {targets}"
            )
        return UnitaryApp(gate, targets)

    def _parse_gate(self) -> Gate:
        name_token = self._expect("NAME")
        name = name_token.text
        angle = None
        if self._peek().kind == "LPAREN":
            self._advance()
            angle_token = self._peek()
            if angle_token.kind == "NUMBER":
                self._advance()
                angle = float(angle_token.text)
            elif angle_token.kind == "NAME":
                self._advance()
                angle = Parameter(angle_token.text)
            else:
                raise self._error("expected a parameter name or number as gate angle")
            self._expect("RPAREN")
        return _build_gate(name, angle, name_token)

    def _parse_case(self) -> Case:
        self._expect("CASE")
        measurement_name = self._expect("NAME").text
        qubits = self._parse_bracketed_qubits()
        self._expect("EQUALS")
        branches: dict[int, Program] = {}
        while self._peek().kind == "NUMBER":
            outcome = int(self._advance().text)
            self._expect("ARROW")
            branches[outcome] = self._parse_block()
        self._expect("END")
        if not branches:
            raise self._error("a case statement needs at least one branch")
        measurement = self._resolve_measurement(measurement_name, qubits)
        return Case(measurement, qubits, branches)

    def _parse_while(self) -> While:
        self._expect("WHILE")
        self._expect("LPAREN")
        bound = int(self._expect("NUMBER").text)
        self._expect("RPAREN")
        measurement_name = self._expect("NAME").text
        qubits = self._parse_bracketed_qubits()
        self._expect("EQUALS")
        guard_value = int(self._expect("NUMBER").text)
        if guard_value != 1:
            raise self._error("while loops iterate on guard outcome 1")
        self._expect("DO")
        body = self._parse_sequence(terminators=("DONE",))
        self._expect("DONE")
        measurement = self._resolve_measurement(measurement_name, qubits)
        return While(measurement, qubits, body, bound)

    def _parse_sum(self) -> Program:
        summands = [self._parse_block()]
        while self._peek().kind == "PLUS":
            self._advance()
            summands.append(self._parse_block())
        if len(summands) < 2:
            raise self._error("an additive statement needs at least two summands")
        result: Program = summands[0]
        for summand in summands[1:]:
            result = Sum(result, summand)
        return result

    def _parse_block(self) -> Program:
        self._expect("LBRACE")
        program = self._parse_sequence(terminators=("RBRACE",))
        self._expect("RBRACE")
        return program

    def _resolve_measurement(self, name: str, qubits: tuple[str, ...]) -> Measurement:
        if name in self._measurements:
            return self._measurements[name]
        if name in ("M", "M_comp1") or name.startswith("M_comp"):
            return computational_measurement(len(qubits))
        raise ParseError(
            f"unknown measurement {name!r}; pass it via the 'measurements' argument"
        )


def _build_gate(name: str, angle, token: Token) -> Gate:
    upper = name.upper()
    if upper in FIXED_GATE_REGISTRY:
        if angle is not None:
            raise ParseError(f"gate {name} takes no angle (at {token.line}:{token.column})")
        return FIXED_GATE_REGISTRY[upper]()
    parameterized = {
        "RX": lambda a: Rotation("X", a),
        "RY": lambda a: Rotation("Y", a),
        "RZ": lambda a: Rotation("Z", a),
        "RXX": lambda a: Coupling("XX", a),
        "RYY": lambda a: Coupling("YY", a),
        "RZZ": lambda a: Coupling("ZZ", a),
        "CRX": lambda a: ControlledRotation("X", a),
        "CRY": lambda a: ControlledRotation("Y", a),
        "CRZ": lambda a: ControlledRotation("Z", a),
        "CRXX": lambda a: ControlledCoupling("XX", a),
        "CRYY": lambda a: ControlledCoupling("YY", a),
        "CRZZ": lambda a: ControlledCoupling("ZZ", a),
    }
    if upper in parameterized:
        if angle is None:
            raise ParseError(
                f"gate {name} requires an angle argument (at {token.line}:{token.column})"
            )
        return parameterized[upper](angle)
    raise ParseError(f"unknown gate {name!r} at {token.line}:{token.column}")


def parse_program(
    source: str,
    measurements: Mapping[str, Measurement] | None = None,
) -> Program:
    """Parse surface-syntax text into a program AST.

    ``measurements`` maps measurement names used in the text to
    :class:`Measurement` objects; the name ``M`` defaults to the
    computational-basis measurement on the guard's qubits.
    """
    tokens = tokenize(source)
    parser = _Parser(tokens, measurements or {})
    return parser.parse_program()
