"""Generic AST traversals and structural transformations.

Utilities shared by the semantics, the resource analysis, and the
differentiation transformation: iterating over sub-programs, rebuilding
trees bottom-up, counting nodes, and expanding bounded while-loops into
their case/sequence macro form (Eq. 3.1).
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.errors import WellFormednessError
from repro.lang.ast import (
    Abort,
    Case,
    Init,
    Program,
    Seq,
    Skip,
    Sum,
    UnitaryApp,
    While,
)


def children(program: Program) -> tuple[Program, ...]:
    """Return the immediate sub-programs of a node."""
    return program.children()


def iter_subprograms(program: Program) -> Iterator[Program]:
    """Yield the program and every sub-program, in pre-order."""
    yield program
    for child in program.children():
        yield from iter_subprograms(child)


def child_labels(program: Program) -> tuple[str, ...]:
    """Human-readable labels of a node's children, aligned with ``children()``.

    Used by diagnostics to address a sub-program from the root as a *path*
    of labels (``("first", "branch[1]", "body")``) instead of a raw index.
    """
    if isinstance(program, Seq):
        return ("first", "second")
    if isinstance(program, Sum):
        return ("left", "right")
    if isinstance(program, Case):
        return tuple(f"branch[{outcome}]" for outcome, _ in program.branches)
    if isinstance(program, While):
        return ("body",)
    return ()


def iter_with_paths(program: Program) -> Iterator[tuple[tuple[str, ...], Program]]:
    """Yield ``(path, node)`` for the program and every sub-program, pre-order.

    ``path`` is the tuple of :func:`child_labels` entries leading from the
    root to the node; the root itself has the empty path.
    """

    def walk(node: Program, path: tuple[str, ...]) -> Iterator[tuple[tuple[str, ...], Program]]:
        yield path, node
        for label, child in zip(child_labels(node), node.children()):
            yield from walk(child, path + (label,))

    return walk(program, ())


def iter_gate_applications(program: Program) -> Iterator[UnitaryApp]:
    """Yield every unitary statement in the program, in pre-order.

    Loop bodies are yielded once (not ``bound`` times); the resource
    analysis multiplies by the bound separately when counting gates.
    """
    for node in iter_subprograms(program):
        if isinstance(node, UnitaryApp):
            yield node


def program_size(program: Program) -> int:
    """Return the number of AST nodes in the program."""
    return sum(1 for _ in iter_subprograms(program))


def map_program(program: Program, transform: Callable[[Program], Program]) -> Program:
    """Rebuild the tree bottom-up, applying ``transform`` to every rebuilt node.

    ``transform`` receives a node whose children have already been
    transformed and returns its replacement (possibly the node itself).
    """
    if isinstance(program, (Abort, Skip, Init, UnitaryApp)):
        rebuilt: Program = program
    elif isinstance(program, Seq):
        rebuilt = Seq(map_program(program.first, transform), map_program(program.second, transform))
    elif isinstance(program, Sum):
        rebuilt = Sum(map_program(program.left, transform), map_program(program.right, transform))
    elif isinstance(program, Case):
        rebuilt = Case(
            program.measurement,
            program.qubits,
            [(m, map_program(p, transform)) for m, p in program.branches],
        )
    elif isinstance(program, While):
        rebuilt = While(
            program.measurement,
            program.qubits,
            map_program(program.body, transform),
            program.bound,
        )
    else:
        raise WellFormednessError(f"unknown program node {type(program).__name__}")
    return transform(rebuilt)


def unfold_while(loop: While) -> Case:
    """Expand one level of a bounded while-loop into its macro form (Eq. 3.1).

    * ``while(1) M[q]=1 do P done  ≡  case M[q] = 0 → skip, 1 → P; abort end``
    * ``while(T) M[q]=1 do P done  ≡  case M[q] = 0 → skip, 1 → P; while(T−1) end``
    """
    qubits = loop.qubits
    all_vars = tuple(sorted(loop.qvars()))
    if loop.bound == 1:
        continuation: Program = Seq(loop.body, Abort(all_vars))
    else:
        continuation = Seq(
            loop.body,
            While(loop.measurement, loop.qubits, loop.body, loop.bound - 1),
        )
    return Case(
        loop.measurement,
        qubits,
        {0: Skip(qubits), 1: continuation},
    )


def fully_unfold_whiles(program: Program) -> Program:
    """Recursively replace every bounded while-loop by its full macro expansion.

    The result contains no :class:`While` node; it is semantically equal to
    the input and is used by analyses that only handle the core constructs.
    """

    def expand(node: Program) -> Program:
        if isinstance(node, While):
            # The freshly built Case still contains a While with a smaller
            # bound; keep expanding until none remain.
            return fully_unfold_whiles(unfold_while(node))
        return node

    return map_program(program, expand)


def reassociate(program: Program) -> Program:
    """Normalize the association of ``;`` and ``+`` chains to the left.

    Sequencing and the additive choice are associative; the concrete syntax
    does not record how a chain was nested, so the parser always rebuilds
    chains left-associatively.  ``reassociate`` puts an arbitrary AST into
    that canonical form, which makes ``parse(pretty(P)) == reassociate(P)``
    an exact identity.
    """

    def flatten(node: Program, node_type) -> list[Program]:
        if isinstance(node, node_type):
            left, right = node.children()
            return flatten(left, node_type) + flatten(right, node_type)
        return [reassociate(node)]

    if isinstance(program, Seq):
        parts = flatten(program, Seq)
        result = parts[0]
        for part in parts[1:]:
            result = Seq(result, part)
        return result
    if isinstance(program, Sum):
        parts = flatten(program, Sum)
        result = parts[0]
        for part in parts[1:]:
            result = Sum(result, part)
        return result
    if isinstance(program, Case):
        return Case(
            program.measurement,
            program.qubits,
            [(m, reassociate(p)) for m, p in program.branches],
        )
    if isinstance(program, While):
        return While(program.measurement, program.qubits, reassociate(program.body), program.bound)
    return program


def contains_while(program: Program) -> bool:
    """Return True when the program contains a bounded while-loop."""
    return any(isinstance(node, While) for node in iter_subprograms(program))


def contains_case(program: Program) -> bool:
    """Return True when the program contains a case statement (or a while loop)."""
    return any(isinstance(node, (Case, While)) for node in iter_subprograms(program))


def is_circuit(program: Program) -> bool:
    """Return True when the program is a pure circuit.

    A circuit in the paper's sense contains only unitary applications,
    ``skip`` and sequencing — no measurement-controlled branching, no loops,
    no initialization, no abort and no additive choice.  The parameter-shift
    baseline of :mod:`repro.baselines.phase_shift` applies exactly to this
    fragment.
    """
    for node in iter_subprograms(program):
        if isinstance(node, (Case, While, Sum, Abort, Init)):
            return False
    return True
