"""Convenience constructors for building programs programmatically.

The AST constructors in :mod:`repro.lang.ast` are deliberately minimal; this
module provides the ergonomic layer used throughout the examples, the VQC
generators, and the tests: n-ary sequencing, rotation shortcuts (``rx``,
``rxx``, ...), and case/while statements guarded by computational-basis
measurements on a single qubit (the only guards the paper's evaluation
uses).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import WellFormednessError
from repro.lang.ast import Case, Program, Seq, Sum, UnitaryApp, While
from repro.lang.gates import Coupling, Gate, Rotation
from repro.lang.parameters import Parameter
from repro.linalg.measurement import Measurement, computational_measurement

Angle = Parameter | float


def seq(programs: Sequence[Program]) -> Program:
    """Sequence a non-empty list of programs, associating to the left.

    ``seq([a, b, c])`` builds ``(a; b); c``; sequencing is associative at the
    semantic level so the association choice is only a matter of tree shape.
    """
    programs = list(programs)
    if not programs:
        raise WellFormednessError("cannot sequence an empty list of programs")
    result = programs[0]
    for program in programs[1:]:
        result = Seq(result, program)
    return result


def sum_programs(programs: Sequence[Program]) -> Program:
    """Combine programs with the additive choice ``+``, associating to the left."""
    programs = list(programs)
    if not programs:
        raise WellFormednessError("cannot sum an empty list of programs")
    result = programs[0]
    for program in programs[1:]:
        result = Sum(result, program)
    return result


def apply_gate(gate: Gate, qubits: Sequence[str] | str) -> UnitaryApp:
    """Apply a gate to the given qubits (``q := U(θ)[q]``)."""
    return UnitaryApp(gate, qubits if not isinstance(qubits, str) else (qubits,))


def rx(angle: Angle, qubit: str) -> UnitaryApp:
    """Single-qubit rotation ``R_X(angle)`` on ``qubit``."""
    return UnitaryApp(Rotation("X", angle), (qubit,))


def ry(angle: Angle, qubit: str) -> UnitaryApp:
    """Single-qubit rotation ``R_Y(angle)`` on ``qubit``."""
    return UnitaryApp(Rotation("Y", angle), (qubit,))


def rz(angle: Angle, qubit: str) -> UnitaryApp:
    """Single-qubit rotation ``R_Z(angle)`` on ``qubit``."""
    return UnitaryApp(Rotation("Z", angle), (qubit,))


def rxx(angle: Angle, qubit1: str, qubit2: str) -> UnitaryApp:
    """Two-qubit coupling ``R_{X⊗X}(angle)``."""
    return UnitaryApp(Coupling("XX", angle), (qubit1, qubit2))


def ryy(angle: Angle, qubit1: str, qubit2: str) -> UnitaryApp:
    """Two-qubit coupling ``R_{Y⊗Y}(angle)``."""
    return UnitaryApp(Coupling("YY", angle), (qubit1, qubit2))


def rzz(angle: Angle, qubit1: str, qubit2: str) -> UnitaryApp:
    """Two-qubit coupling ``R_{Z⊗Z}(angle)``."""
    return UnitaryApp(Coupling("ZZ", angle), (qubit1, qubit2))


def case_on_qubit(
    qubit: str,
    branches: Mapping[int, Program],
    measurement: Measurement | None = None,
) -> Case:
    """A ``case`` statement guarded by a computational-basis measurement of one qubit.

    ``branches`` maps the outcomes 0 and 1 to their programs.  A custom
    two-outcome measurement may be supplied instead of the default
    computational one.
    """
    measurement = measurement if measurement is not None else computational_measurement(1)
    return Case(measurement, (qubit,), dict(branches))


def bounded_while_on_qubit(
    qubit: str,
    body: Program,
    bound: int,
    measurement: Measurement | None = None,
) -> While:
    """A ``while(T)`` loop guarded by a computational-basis measurement of one qubit.

    The loop runs ``body`` while the measurement yields 1, for at most
    ``bound`` iterations.
    """
    measurement = measurement if measurement is not None else computational_measurement(1)
    return While(measurement, (qubit,), body, bound)
