"""Classical parameters θ of parameterized quantum programs (Section 3.1).

A :class:`Parameter` is a named real-valued symbol.  A
:class:`ParameterVector` is the ordered tuple θ = (θ₁, …, θ_k) over which a
program is parameterized.  A :class:`ParameterBinding` fixes a point
θ* ∈ R^k, which is what every semantic evaluator needs in order to produce
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.errors import ParameterError

_NAME_ALPHABET = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")


def _validate_name(name: str) -> str:
    if not name:
        raise ParameterError("parameter names must be non-empty")
    if not set(name) <= _NAME_ALPHABET:
        raise ParameterError(
            f"parameter name {name!r} may only contain letters, digits and underscores"
        )
    if name[0].isdigit():
        raise ParameterError(f"parameter name {name!r} must not start with a digit")
    return name


@dataclass(frozen=True, order=True)
class Parameter:
    """A named classical parameter θ_j."""

    name: str

    def __init__(self, name: str):
        object.__setattr__(self, "name", _validate_name(name))

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"Parameter({self.name!r})"

    def __str__(self) -> str:
        return self.name


class ParameterVector:
    """An ordered vector of distinct parameters, θ = (θ₁, …, θ_k).

    Elements are named ``{prefix}_{index}`` so that they remain valid
    identifiers in the surface syntax.
    """

    def __init__(self, prefix: str, length: int):
        _validate_name(prefix)
        if length < 1:
            raise ParameterError("a parameter vector must have positive length")
        self._prefix = prefix
        self._parameters = tuple(Parameter(f"{prefix}_{index}") for index in range(length))

    @property
    def prefix(self) -> str:
        """The common name prefix of the vector's entries."""
        return self._prefix

    def __len__(self) -> int:
        return len(self._parameters)

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self._parameters)

    def __getitem__(self, index: int) -> Parameter:
        return self._parameters[index]

    def __contains__(self, parameter: object) -> bool:
        return parameter in self._parameters

    def as_tuple(self) -> tuple[Parameter, ...]:
        """Return the underlying tuple of parameters."""
        return self._parameters

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"ParameterVector({self._prefix!r}, {len(self)})"


class ParameterBinding(Mapping[Parameter, float]):
    """An assignment θ* ∈ R^k of values to parameters.

    The binding behaves like an immutable mapping from :class:`Parameter` to
    ``float``; convenience constructors accept plain string keys.  Derived
    bindings (``with_value``, ``shifted``) return new objects, matching the
    functional style of the rest of the library.
    """

    def __init__(self, values: Mapping[Parameter | str, float] | None = None):
        resolved: dict[Parameter, float] = {}
        for key, value in (values or {}).items():
            parameter = key if isinstance(key, Parameter) else Parameter(str(key))
            if parameter in resolved:
                raise ParameterError(f"parameter {parameter.name!r} bound twice")
            resolved[parameter] = float(value)
        self._values = resolved

    # -- Mapping protocol ------------------------------------------------------

    def __getitem__(self, key: Parameter | str) -> float:
        parameter = key if isinstance(key, Parameter) else Parameter(str(key))
        try:
            return self._values[parameter]
        except KeyError:
            raise ParameterError(f"parameter {parameter.name!r} is not bound") from None

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: object) -> bool:
        if isinstance(key, str):
            key = Parameter(key)
        return key in self._values

    # -- convenience ------------------------------------------------------------

    @classmethod
    def zeros(cls, parameters: Iterable[Parameter]) -> "ParameterBinding":
        """Bind every parameter to zero."""
        return cls({parameter: 0.0 for parameter in parameters})

    @classmethod
    def from_values(
        cls, parameters: Iterable[Parameter], values: Iterable[float]
    ) -> "ParameterBinding":
        """Zip a sequence of parameters with a sequence of values."""
        parameters = list(parameters)
        values = [float(v) for v in values]
        if len(parameters) != len(values):
            raise ParameterError(
                f"{len(parameters)} parameters but {len(values)} values provided"
            )
        return cls(dict(zip(parameters, values)))

    def value(self, parameter: Parameter | str) -> float:
        """Return the value bound to a parameter (same as indexing)."""
        return self[parameter]

    def with_value(self, parameter: Parameter | str, value: float) -> "ParameterBinding":
        """Return a new binding with one parameter (re)bound."""
        parameter = parameter if isinstance(parameter, Parameter) else Parameter(str(parameter))
        merged = dict(self._values)
        merged[parameter] = float(value)
        return ParameterBinding(merged)

    def shifted(self, parameter: Parameter | str, delta: float) -> "ParameterBinding":
        """Return a new binding with one parameter shifted by ``delta``.

        The parameter-shift baselines and the finite-difference checks both
        evaluate the observable semantics at shifted points θ* ± s e_j.
        """
        return self.with_value(parameter, self[parameter] + float(delta))

    def merged(self, other: "ParameterBinding") -> "ParameterBinding":
        """Return the union of two bindings; ``other`` wins on conflicts."""
        merged = dict(self._values)
        merged.update(other._values)
        return ParameterBinding(merged)

    def to_dict(self) -> dict[str, float]:
        """Return a plain ``{name: value}`` dictionary."""
        return {parameter.name: value for parameter, value in self._values.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        inner = ", ".join(f"{p.name}={v:.4g}" for p, v in sorted(self._values.items()))
        return f"ParameterBinding({inner})"
