"""The parameterized quantum bounded while-language (paper Section 3).

This package defines

* classical parameters and parameter bindings (θ and θ*),
* the gate language — fixed gates, single-qubit Pauli rotations ``R_σ(θ)``,
  two-qubit couplings ``R_{σ⊗σ}(θ)``, and the controlled rotations used by
  the differentiation gadget,
* the abstract syntax of ``q-while(T)`` programs (abort, skip,
  initialization, unitary application, sequencing, case, bounded while) plus
  the additive choice ``P₁ + P₂`` of Section 4,
* static analyses: accessible variables ``qVar`` (Appendix B.1) and
  well-formedness checking,
* a pretty-printer and a parser for a concrete surface syntax, used both for
  human inspection and for the "#lines" resource metric of the evaluation.
"""

from repro.lang.parameters import Parameter, ParameterBinding, ParameterVector
from repro.lang.gates import (
    Gate,
    FixedGate,
    Rotation,
    Coupling,
    ControlledRotation,
    ControlledCoupling,
    hadamard,
    pauli_x,
    pauli_y,
    pauli_z,
    cnot,
    cz,
    swap,
)
from repro.lang.ast import (
    Program,
    Abort,
    Skip,
    Init,
    UnitaryApp,
    Seq,
    Case,
    While,
    Sum,
)
from repro.lang.builder import (
    seq,
    sum_programs,
    apply_gate,
    rx,
    ry,
    rz,
    rxx,
    ryy,
    rzz,
    case_on_qubit,
    bounded_while_on_qubit,
)
from repro.lang.qvar import qvar
from repro.lang.wellformed import (
    check_well_formed,
    assert_normal_program,
    is_additive_program,
)
from repro.lang.pretty import pretty_print, line_count
from repro.lang.parser import parse_program
from repro.lang.traversal import (
    children,
    map_program,
    iter_subprograms,
    iter_gate_applications,
    program_size,
    unfold_while,
)

__all__ = [
    "Parameter",
    "ParameterBinding",
    "ParameterVector",
    "Gate",
    "FixedGate",
    "Rotation",
    "Coupling",
    "ControlledRotation",
    "ControlledCoupling",
    "hadamard",
    "pauli_x",
    "pauli_y",
    "pauli_z",
    "cnot",
    "cz",
    "swap",
    "Program",
    "Abort",
    "Skip",
    "Init",
    "UnitaryApp",
    "Seq",
    "Case",
    "While",
    "Sum",
    "seq",
    "sum_programs",
    "apply_gate",
    "rx",
    "ry",
    "rz",
    "rxx",
    "ryy",
    "rzz",
    "case_on_qubit",
    "bounded_while_on_qubit",
    "qvar",
    "check_well_formed",
    "assert_normal_program",
    "is_additive_program",
    "pretty_print",
    "line_count",
    "parse_program",
    "children",
    "map_program",
    "iter_subprograms",
    "iter_gate_applications",
    "program_size",
    "unfold_while",
]
