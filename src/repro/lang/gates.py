"""Gate language: fixed gates and classically parameterized unitaries.

A :class:`Gate` is the syntactic object that appears inside a unitary
statement ``q := U(θ)[q]``.  The paper's code-transformation rules cover the
single-qubit Pauli rotations ``R_σ(θ)`` and the two-qubit couplings
``R_{σ⊗σ}(θ)`` (these form a universal set and are natively available on
ion-trap machines, Section 3.1); the differentiation gadget additionally
uses Hadamard and the controlled rotations ``C_R_σ(θ)`` of Definition 6.1.
Arbitrary fixed (non-parameterized) unitaries are supported as
:class:`FixedGate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Union

import numpy as np

from repro.errors import LinalgError, ParameterError
from repro.linalg.gates import (
    CNOT,
    CZ,
    HADAMARD,
    PAULI_X,
    PAULI_Y,
    PAULI_Z,
    SWAP,
    COUPLING_AXES,
    SINGLE_QUBIT_AXES,
    controlled_coupling_matrix,
    controlled_rotation_matrix,
    coupling_matrix,
    rotation_matrix,
    rotation_generator,
)
from repro.linalg.operators import is_unitary
from repro.lang.parameters import Parameter, ParameterBinding

#: An angle is either a symbolic parameter or a fixed real number.
Angle = Union[Parameter, float]


def _angle_value(angle: Angle, binding: ParameterBinding | None) -> float:
    if isinstance(angle, Parameter):
        if binding is None:
            raise ParameterError(
                f"gate angle {angle.name!r} is symbolic; a parameter binding is required"
            )
        return binding[angle]
    return float(angle)


def _angle_text(angle: Angle) -> str:
    if isinstance(angle, Parameter):
        return angle.name
    # repr() is the shortest representation that round-trips exactly, which the
    # pretty-print → parse round-trip property relies on.
    return repr(float(angle))


@lru_cache(maxsize=1024)
def _bound_matrix_cached(gate: "Gate", values: tuple[float, ...]) -> np.ndarray:
    binding = (
        ParameterBinding(dict(zip(gate.parameters(), values))) if values else None
    )
    matrix = gate.matrix(binding)
    # Cached arrays are shared across calls; freeze them.
    matrix.setflags(write=False)
    return matrix


def bound_gate_matrix(gate: "Gate", binding: "ParameterBinding | None" = None) -> np.ndarray:
    """Return ``gate.matrix(binding)`` through a bounded LRU cache.

    Simulation applies the same handful of gates at the same parameter point
    thousands of times per epoch; re-running ``gate.matrix(binding)`` each
    time rebuilds trigonometric matrix entries from scratch.  The cache key
    is the (hashable) gate together with the concrete values its parameters
    take under ``binding`` — never the whole binding, so one entry serves
    every binding that agrees on the gate's own angles.  Gates that are not
    hashable fall back to an uncached evaluation.
    """
    try:
        return _bound_matrix_cached(gate, tuple(binding[p] for p in gate.parameters()))
    except TypeError:
        return gate.matrix(binding)


class Gate:
    """Abstract base class of all gates."""

    #: number of qubits the gate acts on
    arity: int
    #: display name used by the pretty-printer
    name: str

    def matrix(self, binding: ParameterBinding | None = None) -> np.ndarray:
        """Return the unitary matrix of the gate at the given parameter point."""
        raise NotImplementedError

    def parameters(self) -> tuple[Parameter, ...]:
        """Return the symbolic parameters the gate depends on (possibly empty)."""
        return ()

    def uses(self, parameter: Parameter) -> bool:
        """Return True when the gate's matrix depends on ``parameter``.

        In the paper's terminology, the gate *non-trivially uses* the
        parameter; gates for which this is False are handled by the
        Trivial-Unitary rules.
        """
        return parameter in self.parameters()

    def display(self) -> str:
        """Return the concrete-syntax spelling of the gate."""
        return self.name

    def __str__(self) -> str:
        return self.display()


@dataclass(frozen=True)
class FixedGate(Gate):
    """A non-parameterized unitary with an explicit matrix."""

    name: str
    _matrix: tuple[tuple[complex, ...], ...]

    def __init__(self, name: str, matrix: np.ndarray):
        array = np.asarray(matrix, dtype=complex)
        if not is_unitary(array):
            raise LinalgError(f"gate {name!r} is not unitary")
        size = array.shape[0]
        arity = int(round(np.log2(size)))
        if 2**arity != size:
            raise LinalgError(f"gate {name!r} must act on a whole number of qubits")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_matrix", tuple(tuple(row) for row in array))

    @property
    def arity(self) -> int:
        return int(round(np.log2(len(self._matrix))))

    def matrix(self, binding: ParameterBinding | None = None) -> np.ndarray:
        return np.array(self._matrix, dtype=complex)


@dataclass(frozen=True)
class Rotation(Gate):
    """Single-qubit Pauli rotation ``R_σ(θ)`` with σ ∈ {X, Y, Z} (Eq. 3.2)."""

    axis: str
    angle: Angle

    arity = 1

    def __init__(self, axis: str, angle: Angle):
        axis = axis.upper()
        if axis not in SINGLE_QUBIT_AXES:
            raise LinalgError(f"rotation axis must be one of {SINGLE_QUBIT_AXES}, got {axis!r}")
        object.__setattr__(self, "axis", axis)
        object.__setattr__(self, "angle", angle)

    @property
    def name(self) -> str:
        return f"R{self.axis}"

    def parameters(self) -> tuple[Parameter, ...]:
        return (self.angle,) if isinstance(self.angle, Parameter) else ()

    def matrix(self, binding: ParameterBinding | None = None) -> np.ndarray:
        return rotation_matrix(self.axis, _angle_value(self.angle, binding))

    def generator(self) -> np.ndarray:
        """Return the Hermitian generator σ of the rotation."""
        return rotation_generator(self.axis)

    def display(self) -> str:
        return f"{self.name}({_angle_text(self.angle)})"


@dataclass(frozen=True)
class Coupling(Gate):
    """Two-qubit coupling ``R_{σ⊗σ}(θ)`` with σ ∈ {X, Y, Z} (Section 3.1)."""

    axis: str
    angle: Angle

    arity = 2

    def __init__(self, axis: str, angle: Angle):
        axis = axis.upper()
        if axis not in COUPLING_AXES:
            raise LinalgError(f"coupling axis must be one of {COUPLING_AXES}, got {axis!r}")
        object.__setattr__(self, "axis", axis)
        object.__setattr__(self, "angle", angle)

    @property
    def name(self) -> str:
        return f"R{self.axis}"

    def parameters(self) -> tuple[Parameter, ...]:
        return (self.angle,) if isinstance(self.angle, Parameter) else ()

    def matrix(self, binding: ParameterBinding | None = None) -> np.ndarray:
        return coupling_matrix(self.axis, _angle_value(self.angle, binding))

    def generator(self) -> np.ndarray:
        """Return the Hermitian generator σ⊗σ of the coupling."""
        return rotation_generator(self.axis)

    def display(self) -> str:
        return f"{self.name}({_angle_text(self.angle)})"


@dataclass(frozen=True)
class ControlledRotation(Gate):
    """The gadget gate ``C_R_σ(θ)`` of Definition 6.1 (control qubit first)."""

    axis: str
    angle: Angle

    arity = 2

    def __init__(self, axis: str, angle: Angle):
        axis = axis.upper()
        if axis not in SINGLE_QUBIT_AXES:
            raise LinalgError(
                f"controlled-rotation axis must be one of {SINGLE_QUBIT_AXES}, got {axis!r}"
            )
        object.__setattr__(self, "axis", axis)
        object.__setattr__(self, "angle", angle)

    @property
    def name(self) -> str:
        return f"CR{self.axis}"

    def parameters(self) -> tuple[Parameter, ...]:
        return (self.angle,) if isinstance(self.angle, Parameter) else ()

    def matrix(self, binding: ParameterBinding | None = None) -> np.ndarray:
        return controlled_rotation_matrix(self.axis, _angle_value(self.angle, binding))

    def display(self) -> str:
        return f"{self.name}({_angle_text(self.angle)})"


@dataclass(frozen=True)
class ControlledCoupling(Gate):
    """The two-qubit-target gadget gate ``C_R_{σ⊗σ}(θ)`` (control qubit first)."""

    axis: str
    angle: Angle

    arity = 3

    def __init__(self, axis: str, angle: Angle):
        axis = axis.upper()
        if axis not in COUPLING_AXES:
            raise LinalgError(
                f"controlled-coupling axis must be one of {COUPLING_AXES}, got {axis!r}"
            )
        object.__setattr__(self, "axis", axis)
        object.__setattr__(self, "angle", angle)

    @property
    def name(self) -> str:
        return f"CR{self.axis}"

    def parameters(self) -> tuple[Parameter, ...]:
        return (self.angle,) if isinstance(self.angle, Parameter) else ()

    def matrix(self, binding: ParameterBinding | None = None) -> np.ndarray:
        return controlled_coupling_matrix(self.axis, _angle_value(self.angle, binding))

    def display(self) -> str:
        return f"{self.name}({_angle_text(self.angle)})"


# -- common fixed gates -------------------------------------------------------


def hadamard() -> FixedGate:
    """The Hadamard gate ``H``."""
    return FixedGate("H", HADAMARD)


def pauli_x() -> FixedGate:
    """The Pauli ``X`` gate."""
    return FixedGate("X", PAULI_X)


def pauli_y() -> FixedGate:
    """The Pauli ``Y`` gate."""
    return FixedGate("Y", PAULI_Y)


def pauli_z() -> FixedGate:
    """The Pauli ``Z`` gate."""
    return FixedGate("Z", PAULI_Z)


def cnot() -> FixedGate:
    """The controlled-NOT gate (control first)."""
    return FixedGate("CNOT", CNOT)


def cz() -> FixedGate:
    """The controlled-Z gate."""
    return FixedGate("CZ", CZ)


def swap() -> FixedGate:
    """The SWAP gate."""
    return FixedGate("SWAP", SWAP)


#: Registry of fixed-gate constructors keyed by surface-syntax name, used by the parser.
FIXED_GATE_REGISTRY = {
    "H": hadamard,
    "X": pauli_x,
    "Y": pauli_y,
    "Z": pauli_z,
    "CNOT": cnot,
    "CZ": cz,
    "SWAP": swap,
}
