"""Static well-formedness checking of programs.

The AST constructors already reject the most local errors (wrong gate arity,
duplicate branches, ...).  The checks here are the global ones that need the
whole tree or knowledge of which language — normal ``q-while(T)`` or
additive ``add-q-while(T)`` — the program is supposed to live in:

* every measurement guard acts on as many qubits as it measures and is
  complete (``Σ M_m†M_m = I``),
* branch programs of a ``case`` only touch declared variables when a
  variable universe is supplied,
* a *normal* program contains no additive ``+`` node.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import WellFormednessError
from repro.lang.ast import Case, Program, Sum, UnitaryApp, While
from repro.lang.traversal import iter_subprograms


def is_additive_program(program: Program) -> bool:
    """Return True when the program uses the additive choice ``+`` anywhere."""
    return program.is_additive()


def assert_normal_program(program: Program) -> Program:
    """Raise unless the program is a normal (non-additive) ``q-while(T)`` program."""
    if is_additive_program(program):
        raise WellFormednessError(
            "expected a normal q-while program but the additive choice '+' occurs in it"
        )
    return program


def check_well_formed(
    program: Program,
    *,
    variables: Iterable[str] | None = None,
    allow_additive: bool = True,
    require_complete_measurements: bool = True,
) -> Program:
    """Validate a program, returning it unchanged on success.

    Parameters
    ----------
    variables:
        Optional universe of allowed variable names; when given, any access
        to a variable outside the universe is an error.
    allow_additive:
        When False, reject programs containing ``+``.
    require_complete_measurements:
        When True (default), every guard measurement must satisfy the
        completeness relation.
    """
    if not allow_additive:
        assert_normal_program(program)
    universe = frozenset(variables) if variables is not None else None
    if universe is not None:
        extra = program.qvars() - universe
        if extra:
            raise WellFormednessError(
                f"program accesses variables {sorted(extra)} outside the declared set "
                f"{sorted(universe)}"
            )
    for node in iter_subprograms(program):
        if isinstance(node, (Case, While)):
            _check_guard(node, require_complete_measurements)
        if isinstance(node, UnitaryApp) and len(node.qubits) != node.gate.arity:
            raise WellFormednessError(
                f"gate {node.gate.display()} applied to {len(node.qubits)} qubits"
            )
    return program


def _check_guard(node: Case | While, require_complete: bool) -> None:
    measurement = node.measurement
    expected_qubits = measurement.num_qubits()
    if len(node.qubits) != expected_qubits:
        raise WellFormednessError(
            f"measurement {measurement.name!r} acts on {expected_qubits} qubit(s) "
            f"but the guard lists {len(node.qubits)}: {node.qubits}"
        )
    if require_complete and not measurement.is_complete():
        raise WellFormednessError(
            f"guard measurement {measurement.name!r} is not complete (Σ M†M ≠ I)"
        )


def declared_parameters(program: Program) -> tuple:
    """Return the program's parameters as a sorted tuple (stable across runs)."""
    return tuple(sorted(program.parameters(), key=lambda p: p.name))
