"""Pretty-printer for the concrete surface syntax.

The printer produces one statement per line with two-space indentation.  Its
output is accepted by :mod:`repro.lang.parser`, and the number of non-empty
lines it produces is the "#lines" metric reported in the evaluation tables
(Tables 2 and 3 of the paper measure the code length of the OCaml input
programs in the same spirit).

Concrete syntax summary::

    abort[q1, q2]
    skip[q1]
    q1 := |0>
    q1 := RX(theta_0)[q1]
    q1, q2 := RXX(theta_1)[q1, q2]
    case M[q1] =
      0 -> {
        ...
      }
      1 -> {
        ...
      }
    end
    while(2) M[q1] = 1 do
      ...
    done
    {
      ...
    } + {
      ...
    }

Sequencing separates statements with ``;`` at the end of every statement but
the last in a block.
"""

from __future__ import annotations

from repro.errors import WellFormednessError
from repro.lang.ast import (
    Abort,
    Case,
    Init,
    Program,
    Seq,
    Skip,
    Sum,
    UnitaryApp,
    While,
)

_INDENT = "  "


def pretty_print(program: Program) -> str:
    """Return the concrete-syntax text of a program."""
    return "\n".join(_lines(program, 0))


def line_count(program: Program) -> int:
    """Return the number of non-empty lines of the pretty-printed program.

    This is the "#lines" resource metric used in the evaluation tables.
    """
    return sum(1 for line in _lines(program, 0) if line.strip())


def _lines(program: Program, depth: int) -> list[str]:
    pad = _INDENT * depth
    if isinstance(program, Seq):
        statements = _flatten_seq(program)
        lines: list[str] = []
        for index, statement in enumerate(statements):
            chunk = _lines(statement, depth)
            if index < len(statements) - 1:
                chunk = chunk[:-1] + [chunk[-1] + ";"]
            lines.extend(chunk)
        return lines
    if isinstance(program, Abort):
        return [f"{pad}abort[{', '.join(program.qubits)}]"]
    if isinstance(program, Skip):
        return [f"{pad}skip[{', '.join(program.qubits)}]"]
    if isinstance(program, Init):
        return [f"{pad}{program.qubit} := |0>"]
    if isinstance(program, UnitaryApp):
        qubits = ", ".join(program.qubits)
        return [f"{pad}{qubits} := {program.gate.display()}[{qubits}]"]
    if isinstance(program, Case):
        lines = [f"{pad}case {program.measurement.name}[{', '.join(program.qubits)}] ="]
        for outcome, branch in program.branches:
            lines.append(f"{pad}{_INDENT}{outcome} -> {{")
            lines.extend(_lines(branch, depth + 2))
            lines.append(f"{pad}{_INDENT}}}")
        lines.append(f"{pad}end")
        return lines
    if isinstance(program, While):
        guard = f"{program.measurement.name}[{', '.join(program.qubits)}]"
        lines = [f"{pad}while({program.bound}) {guard} = 1 do"]
        lines.extend(_lines(program.body, depth + 1))
        lines.append(f"{pad}done")
        return lines
    if isinstance(program, Sum):
        summands = _flatten_sum(program)
        lines = [f"{pad}{{"]
        for index, summand in enumerate(summands):
            lines.extend(_lines(summand, depth + 1))
            if index < len(summands) - 1:
                lines.append(f"{pad}}} + {{")
        lines.append(f"{pad}}}")
        return lines
    raise WellFormednessError(f"cannot pretty-print node {type(program).__name__}")


def _flatten_seq(program: Program) -> list[Program]:
    if isinstance(program, Seq):
        return _flatten_seq(program.first) + _flatten_seq(program.second)
    return [program]


def _flatten_sum(program: Program) -> list[Program]:
    if isinstance(program, Sum):
        return _flatten_sum(program.left) + _flatten_sum(program.right)
    return [program]
