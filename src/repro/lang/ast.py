"""Abstract syntax of parameterized quantum bounded while-programs.

The node set follows the grammar of Section 3.1::

    P(θ) ::= abort[q] | skip[q] | q := |0⟩ | q := U(θ)[q]
           | P₁(θ); P₂(θ)
           | case M[q] = m → P_m(θ) end
           | while(T) M[q] = 1 do P₁(θ) done

plus the additive choice ``P₁(θ) + P₂(θ)`` of Section 4.  A *normal* program
is one that contains no :class:`Sum` node; an *additive* program may contain
them.  The same node classes serve both languages — the paper's additive
language is a strict superset — and :func:`repro.lang.wellformed.
assert_normal_program` enforces the distinction where it matters.

All nodes are immutable; program transformations build new trees.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterator, Sequence

from repro.errors import WellFormednessError
from repro.lang.gates import Gate
from repro.lang.parameters import Parameter
from repro.linalg.measurement import Measurement


class Program:
    """Base class of all program AST nodes."""

    def qvars(self) -> frozenset[str]:
        """Return qVar(P), the set of quantum variables accessible to the program.

        Follows the recursive definition of Appendix B.1.
        """
        raise NotImplementedError

    def parameters(self) -> frozenset[Parameter]:
        """Return every symbolic parameter occurring in the program."""
        raise NotImplementedError

    def children(self) -> tuple["Program", ...]:
        """Return the immediate sub-programs of this node."""
        return ()

    def is_additive(self) -> bool:
        """Return True when the program contains at least one ``+`` node."""
        return any(child.is_additive() for child in self.children())

    def __str__(self) -> str:
        from repro.lang.pretty import pretty_print

        return pretty_print(self)


@dataclass(frozen=True)
class Abort(Program):
    """``abort[q]`` — terminate, producing the zero partial density operator."""

    qubits: tuple[str, ...]

    def __init__(self, qubits: Sequence[str]):
        object.__setattr__(self, "qubits", _normalize_qubits(qubits))

    def qvars(self) -> frozenset[str]:
        return frozenset(self.qubits)

    def parameters(self) -> frozenset[Parameter]:
        return frozenset()


@dataclass(frozen=True)
class Skip(Program):
    """``skip[q]`` — do nothing."""

    qubits: tuple[str, ...]

    def __init__(self, qubits: Sequence[str]):
        object.__setattr__(self, "qubits", _normalize_qubits(qubits))

    def qvars(self) -> frozenset[str]:
        return frozenset(self.qubits)

    def parameters(self) -> frozenset[Parameter]:
        return frozenset()


@dataclass(frozen=True)
class Init(Program):
    """``q := |0⟩`` — reset one quantum variable to the basis state ``|0⟩``."""

    qubit: str

    def __init__(self, qubit: str):
        if not qubit:
            raise WellFormednessError("initialization requires a variable name")
        object.__setattr__(self, "qubit", str(qubit))

    def qvars(self) -> frozenset[str]:
        return frozenset({self.qubit})

    def parameters(self) -> frozenset[Parameter]:
        return frozenset()


@dataclass(frozen=True)
class UnitaryApp(Program):
    """``q := U(θ)[q]`` — apply a (possibly parameterized) unitary gate."""

    gate: Gate
    qubits: tuple[str, ...]

    def __init__(self, gate: Gate, qubits: Sequence[str]):
        qubits = _normalize_qubits(qubits)
        if len(qubits) != gate.arity:
            raise WellFormednessError(
                f"gate {gate.display()} acts on {gate.arity} qubit(s) "
                f"but {len(qubits)} were given: {qubits}"
            )
        object.__setattr__(self, "gate", gate)
        object.__setattr__(self, "qubits", qubits)

    def qvars(self) -> frozenset[str]:
        return frozenset(self.qubits)

    def parameters(self) -> frozenset[Parameter]:
        return frozenset(self.gate.parameters())


@dataclass(frozen=True)
class Seq(Program):
    """``P₁(θ); P₂(θ)`` — sequential composition."""

    first: Program
    second: Program

    def qvars(self) -> frozenset[str]:
        return self.first.qvars() | self.second.qvars()

    def parameters(self) -> frozenset[Parameter]:
        return self.first.parameters() | self.second.parameters()

    def children(self) -> tuple[Program, ...]:
        return (self.first, self.second)


@dataclass(frozen=True)
class Case(Program):
    """``case M[q] = m → P_m(θ) end`` — measurement-controlled branching.

    ``branches`` associates every outcome of the measurement with the program
    executed when that outcome is observed.
    """

    measurement: Measurement
    qubits: tuple[str, ...]
    branches: tuple[tuple[int, Program], ...]

    def __init__(
        self,
        measurement: Measurement,
        qubits: Sequence[str],
        branches: Sequence[tuple[int, Program]] | dict[int, Program],
    ):
        qubits = _normalize_qubits(qubits)
        if isinstance(branches, dict):
            items = tuple(sorted(branches.items()))
        else:
            items = tuple(sorted((int(m), p) for m, p in branches))
        outcomes = tuple(m for m, _ in items)
        if len(set(outcomes)) != len(outcomes):
            raise WellFormednessError(f"duplicate case branches for outcomes {outcomes}")
        if set(outcomes) != set(measurement.outcomes):
            raise WellFormednessError(
                f"case branches {sorted(outcomes)} do not cover the measurement outcomes "
                f"{sorted(measurement.outcomes)}"
            )
        object.__setattr__(self, "measurement", measurement)
        object.__setattr__(self, "qubits", qubits)
        object.__setattr__(self, "branches", items)

    def branch(self, outcome: int) -> Program:
        """Return the program executed for a given measurement outcome."""
        for m, program in self.branches:
            if m == outcome:
                return program
        raise WellFormednessError(f"no branch for outcome {outcome}")

    def qvars(self) -> frozenset[str]:
        result = frozenset(self.qubits)
        for _, program in self.branches:
            result |= program.qvars()
        return result

    def parameters(self) -> frozenset[Parameter]:
        result: frozenset[Parameter] = frozenset()
        for _, program in self.branches:
            result |= program.parameters()
        return result

    def children(self) -> tuple[Program, ...]:
        return tuple(program for _, program in self.branches)


@dataclass(frozen=True)
class While(Program):
    """``while(T) M[q] = 1 do P₁(θ) done`` — T-bounded loop.

    The measurement must be two-outcome (0 terminates, 1 runs the body); the
    loop iterates at most ``bound`` times, aborting if the guard is still 1
    after the last permitted iteration, exactly as the macro expansion of
    Eq. (3.1) prescribes.
    """

    measurement: Measurement
    qubits: tuple[str, ...]
    body: Program
    bound: int

    def __init__(
        self,
        measurement: Measurement,
        qubits: Sequence[str],
        body: Program,
        bound: int,
    ):
        qubits = _normalize_qubits(qubits)
        bound = int(bound)
        if bound < 1:
            raise WellFormednessError(f"a bounded while needs bound ≥ 1, got {bound}")
        if set(measurement.outcomes) != {0, 1}:
            raise WellFormednessError(
                "the guard measurement of a while loop must have outcomes {0, 1}, "
                f"got {sorted(measurement.outcomes)}"
            )
        object.__setattr__(self, "measurement", measurement)
        object.__setattr__(self, "qubits", qubits)
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "bound", bound)

    def qvars(self) -> frozenset[str]:
        return frozenset(self.qubits) | self.body.qvars()

    def parameters(self) -> frozenset[Parameter]:
        return self.body.parameters()

    def children(self) -> tuple[Program, ...]:
        return (self.body,)


@dataclass(frozen=True)
class Sum(Program):
    """``P₁(θ) + P₂(θ)`` — the additive (either-or) choice of Section 4."""

    left: Program
    right: Program

    def qvars(self) -> frozenset[str]:
        return self.left.qvars() | self.right.qvars()

    def parameters(self) -> frozenset[Parameter]:
        return self.left.parameters() | self.right.parameters()

    def children(self) -> tuple[Program, ...]:
        return (self.left, self.right)

    def is_additive(self) -> bool:
        return True


def _normalize_qubits(qubits: Sequence[str]) -> tuple[str, ...]:
    if isinstance(qubits, str):
        qubits = (qubits,)
    names = tuple(str(q) for q in qubits)
    if not names:
        raise WellFormednessError("a statement must mention at least one quantum variable")
    if len(set(names)) != len(names):
        raise WellFormednessError(f"quantum variables must be distinct, got {names}")
    return names
