"""The ``qVar`` analysis (Appendix B.1).

``qVar(P)`` is the set of quantum variables accessible to ``P``.  The AST
nodes already compute it recursively; this module exposes the analysis as a
standalone function (so it can be called on any node uniformly) and adds the
convention used throughout the paper's proofs: when two programs are
composed, the smaller one is implicitly identified with ``I ⊗ P`` on the
variables it does not access.
"""

from __future__ import annotations

from repro.lang.ast import Program


def qvar(program: Program) -> frozenset[str]:
    """Return qVar(P), the set of quantum variables accessible to the program."""
    return program.qvars()


def shared_variables(first: Program, second: Program) -> frozenset[str]:
    """Return the variables accessible to both programs."""
    return qvar(first) & qvar(second)


def combined_variables(*programs: Program) -> frozenset[str]:
    """Return the union of the variable sets of several programs.

    This is the register on which a composed program (or a compiled multiset
    of programs) must be simulated.
    """
    result: frozenset[str] = frozenset()
    for program in programs:
        result |= qvar(program)
    return result
