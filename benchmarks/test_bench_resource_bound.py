"""Proposition 7.2 — the resource bound ``|#∂P/∂θ_j| ≤ OC_j(P)`` across the evaluation.

Not a table of its own in the paper, but the property every row of Tables 2
and 3 exhibits (and the one the "Resource count" discussion of Section 7
proves).  The benchmarks compare the cost of the static occurrence-count
analysis against the cost of obtaining the exact compiled count, and the
row-level assertions verify the bound (tight for the if-variants, strict for
the while-variants) on every benchmark instance plus the case-study
classifiers.
"""

from __future__ import annotations

from repro.analysis.resources import derivative_program_count, occurrence_count
from repro.analysis.verification import check_resource_bound
from repro.vqc.classifier import build_p1, build_p2
from repro.vqc.generators import build_instance, table3_suite

from benchmarks.conftest import record_result, register_report


def test_bound_on_every_table3_instance(benchmark):
    def compute():
        rows = {}
        for instance in table3_suite():
            check = check_resource_bound(instance.program, instance.shared_parameter)
            rows[instance.label] = (check, instance.variant)
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = [f"{'instance':10s} {'OC':>6s} {'|#∂θ1|':>8s} {'slack':>7s}"]
    for label, (check, variant) in rows.items():
        oc, count, slack = check
        assert check, f"{label} violates Proposition 7.2"
        if variant in ("b", "s", "i"):
            assert slack == 0, f"{label}: bound should be tight for the {variant} variant"
        else:
            assert slack > 0, f"{label}: while variants prune aborting unrollings"
        lines.append(f"{label:10s} {oc:6d} {count:8d} {slack:7d}")
        record_result(
            "resource_bound",
            label,
            {"OC": oc, "derivative_programs": count, "slack": slack},
        )
    register_report(
        "Proposition 7.2 — occurrence count vs non-aborting derivative programs",
        "\n".join(lines),
    )


def test_bound_on_case_study_classifiers(benchmark):
    def check():
        for classifier in (build_p1(), build_p2()):
            for parameter in classifier.parameters[:6]:
                assert check_resource_bound(classifier.program, parameter)
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)


def test_benchmark_occurrence_count(benchmark):
    instance = build_instance("QNN", "L", "w")
    value = benchmark(lambda: occurrence_count(instance.program, instance.shared_parameter))
    assert value == 504


def test_benchmark_exact_derivative_count(benchmark):
    instance = build_instance("QNN", "L", "w")
    value = benchmark.pedantic(
        lambda: derivative_program_count(instance.program, instance.shared_parameter),
        rounds=2,
        iterations=1,
    )
    assert value == 48
