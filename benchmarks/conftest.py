"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper's
evaluation section (see DESIGN.md's experiment index).  Rows are computed
once per session and printed at the end of the run so that

    pytest benchmarks/ --benchmark-only -s

shows the reproduced tables next to pytest-benchmark's timing output.

Besides the printed reports, every module's results are also written
*machine-readably*: :func:`record_result` collects per-module payloads, and
the session-finish hook additionally harvests every pytest-benchmark timing,
then dumps one ``BENCH_<name>.json`` per module (``test_bench_kernels.py``
→ ``BENCH_kernels.json``) into the repository root, so the performance
trajectory of the repo is diffable run over run.

Set ``REPRO_BENCH_SMOKE=1`` to shrink the expensive modules to smoke sizes
(CI runs the whole suite that way and uploads the JSON artifacts); the
modules gate their big-size acceptance assertions on full mode.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.resources import analyze_program
from repro.vqc.generators import table2_suite, table3_suite

#: Repository root — where the BENCH_<name>.json files land.
BENCH_OUTPUT_DIR = Path(__file__).resolve().parent.parent

#: Smoke mode: small sizes, no big-size acceptance assertions.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").strip() not in ("", "0", "false")


def smoke_mode() -> bool:
    """True when the suite runs at smoke sizes (``REPRO_BENCH_SMOKE=1``)."""
    return SMOKE


#: Values reported in the paper (Tables 2 and 3): label -> (OC, |#∂θ1|, #gates, #lines, #layers, #qubits)
PAPER_TABLE3 = {
    "QNN_S,b": (1, 1, 20, 24, 1, 4),
    "QNN_S,s": (5, 5, 20, 24, 1, 4),
    "QNN_S,i": (10, 10, 60, 67, 2, 4),
    "QNN_S,w": (15, 10, 60, 66, 3, 4),
    "QNN_M,i": (24, 24, 165, 189, 3, 18),
    "QNN_M,w": (56, 24, 231, 121, 5, 18),
    "QNN_L,i": (48, 48, 363, 414, 6, 36),
    "QNN_L,w": (504, 48, 2079, 244, 33, 36),
    "VQE_S,b": (1, 1, 14, 16, 1, 2),
    "VQE_S,s": (2, 2, 14, 16, 1, 2),
    "VQE_S,i": (4, 4, 28, 38, 2, 2),
    "VQE_S,w": (6, 4, 42, 32, 3, 2),
    "VQE_M,i": (15, 15, 224, 241, 3, 12),
    "VQE_M,w": (35, 15, 224, 112, 5, 12),
    "VQE_L,i": (40, 40, 576, 628, 5, 40),
    "VQE_L,w": (248, 40, 1984, 368, 17, 40),
    "QAOA_S,b": (1, 1, 12, 15, 1, 3),
    "QAOA_S,s": (3, 3, 12, 15, 1, 3),
    "QAOA_S,i": (6, 6, 36, 41, 2, 3),
    "QAOA_S,w": (9, 6, 36, 29, 3, 3),
    "QAOA_M,i": (18, 18, 120, 142, 3, 18),
    "QAOA_M,w": (42, 18, 168, 94, 5, 18),
    "QAOA_L,i": (36, 36, 264, 315, 6, 36),
    "QAOA_L,w": (378, 36, 1512, 190, 33, 36),
}

PAPER_TABLE2 = {label: row for label, row in PAPER_TABLE3.items() if ",b" not in label and ",s" not in label and "_S" not in label}


def measured_row(instance):
    """Compute the (OC, |#∂θ1|, #gates, #lines, #layers, #qubits) row of one instance."""
    report = analyze_program(
        instance.program,
        instance.shared_parameter,
        name=instance.label,
        layer_count=instance.declared_layers,
    )
    return (
        report.occurrence_count,
        report.derivative_program_count,
        report.gate_count,
        report.line_count,
        report.layer_count,
        report.qubit_count,
    )


def format_table(rows: dict[str, tuple], paper: dict[str, tuple]) -> str:
    header = (
        f"{'instance':10s} {'OC':>10s} {'|#∂θ1|':>10s} {'#gates':>12s} "
        f"{'#lines':>12s} {'#layers':>10s} {'#qb':>8s}   (measured/paper)"
    )
    lines = [header, "-" * len(header)]
    for label, measured in rows.items():
        reference = paper.get(label)
        cells = []
        for index, value in enumerate(measured):
            if reference is None:
                cells.append(f"{value}")
            else:
                cells.append(f"{value}/{reference[index]}")
        lines.append(
            f"{label:10s} {cells[0]:>10s} {cells[1]:>10s} {cells[2]:>12s} "
            f"{cells[3]:>12s} {cells[4]:>10s} {cells[5]:>8s}"
        )
    return "\n".join(lines)


@pytest.fixture(scope="session")
def table2_instances():
    return table2_suite()


@pytest.fixture(scope="session")
def table3_instances():
    return table3_suite()


#: Formatted report blocks registered by the benchmark modules, printed at session end.
REPORTS: dict[str, str] = {}

#: Machine-readable per-module payloads: module key -> {result key -> value}.
RESULTS: dict[str, dict] = {}


def register_report(title: str, body: str) -> None:
    """Register a formatted table/figure reproduction to print after the run."""
    REPORTS[title] = body


def record_result(module: str, key: str, value) -> None:
    """Record one machine-readable benchmark datum.

    ``module`` is the short module key (``"kernels"`` for
    ``test_bench_kernels.py``); everything recorded under it ends up in
    ``BENCH_<module>.json`` at session end.  ``value`` may contain numpy
    scalars/arrays — they are converted to plain JSON types on write.
    """
    RESULTS.setdefault(module, {})[key] = value


def _jsonable(value):
    """Recursively convert numpy scalars/arrays and tuples to JSON types."""
    if isinstance(value, dict):
        return {str(key): _jsonable(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(entry) for entry in value]
    if isinstance(value, np.ndarray):
        return [_jsonable(entry) for entry in value.tolist()]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


def _module_key(fullname: str) -> str | None:
    """``benchmarks/test_bench_kernels.py::test_x`` → ``"kernels"``."""
    filename = fullname.split("::", 1)[0]
    stem = Path(filename).stem
    prefix = "test_bench_"
    if stem.startswith(prefix):
        return stem[len(prefix) :]
    return None


def _harvest_benchmark_timings(session) -> None:
    """Fold every pytest-benchmark timing into its module's JSON payload."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return
    for metadata in getattr(bench_session, "benchmarks", []):
        module = _module_key(getattr(metadata, "fullname", "") or "")
        stats = getattr(metadata, "stats", None)
        if module is None or stats is None:
            continue
        inner = getattr(stats, "stats", stats)
        try:
            entry = {
                "mean_s": float(inner.mean),
                "min_s": float(inner.min),
                "rounds": int(getattr(inner, "rounds", len(getattr(inner, "data", [])) or 0)),
            }
        except (AttributeError, TypeError, ValueError):  # stats not finalized
            continue
        RESULTS.setdefault(module, {}).setdefault("timings", {})[metadata.name] = entry


def _write_bench_json() -> None:
    stamp = time.strftime("%Y-%m-%dT%H:%M:%S")
    for module, payload in RESULTS.items():
        document = {
            "benchmark": module,
            "generated_at": stamp,
            "smoke_mode": SMOKE,
            "platform": platform.platform(),
            "results": _jsonable(payload),
        }
        path = BENCH_OUTPUT_DIR / f"BENCH_{module}.json"
        path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def pytest_sessionfinish(session, exitstatus):
    _harvest_benchmark_timings(session)
    if RESULTS:
        _write_bench_json()
    if not REPORTS:
        return
    terminal = session.config.pluginmanager.get_plugin("terminalreporter")
    write = terminal.write_line if terminal is not None else print
    write("")
    write("=" * 78)
    write("Reproduced evaluation artifacts (paper tables and figures)")
    write("=" * 78)
    for title in sorted(REPORTS):
        write("")
        write(title)
        for line in REPORTS[title].splitlines():
            write(line)
