"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper's
evaluation section (see DESIGN.md's experiment index).  Rows are computed
once per session and printed at the end of the run so that

    pytest benchmarks/ --benchmark-only -s

shows the reproduced tables next to pytest-benchmark's timing output.
"""

from __future__ import annotations

import pytest

from repro.analysis.resources import analyze_program
from repro.vqc.generators import table2_suite, table3_suite


#: Values reported in the paper (Tables 2 and 3): label -> (OC, |#∂θ1|, #gates, #lines, #layers, #qubits)
PAPER_TABLE3 = {
    "QNN_S,b": (1, 1, 20, 24, 1, 4),
    "QNN_S,s": (5, 5, 20, 24, 1, 4),
    "QNN_S,i": (10, 10, 60, 67, 2, 4),
    "QNN_S,w": (15, 10, 60, 66, 3, 4),
    "QNN_M,i": (24, 24, 165, 189, 3, 18),
    "QNN_M,w": (56, 24, 231, 121, 5, 18),
    "QNN_L,i": (48, 48, 363, 414, 6, 36),
    "QNN_L,w": (504, 48, 2079, 244, 33, 36),
    "VQE_S,b": (1, 1, 14, 16, 1, 2),
    "VQE_S,s": (2, 2, 14, 16, 1, 2),
    "VQE_S,i": (4, 4, 28, 38, 2, 2),
    "VQE_S,w": (6, 4, 42, 32, 3, 2),
    "VQE_M,i": (15, 15, 224, 241, 3, 12),
    "VQE_M,w": (35, 15, 224, 112, 5, 12),
    "VQE_L,i": (40, 40, 576, 628, 5, 40),
    "VQE_L,w": (248, 40, 1984, 368, 17, 40),
    "QAOA_S,b": (1, 1, 12, 15, 1, 3),
    "QAOA_S,s": (3, 3, 12, 15, 1, 3),
    "QAOA_S,i": (6, 6, 36, 41, 2, 3),
    "QAOA_S,w": (9, 6, 36, 29, 3, 3),
    "QAOA_M,i": (18, 18, 120, 142, 3, 18),
    "QAOA_M,w": (42, 18, 168, 94, 5, 18),
    "QAOA_L,i": (36, 36, 264, 315, 6, 36),
    "QAOA_L,w": (378, 36, 1512, 190, 33, 36),
}

PAPER_TABLE2 = {label: row for label, row in PAPER_TABLE3.items() if ",b" not in label and ",s" not in label and "_S" not in label}


def measured_row(instance):
    """Compute the (OC, |#∂θ1|, #gates, #lines, #layers, #qubits) row of one instance."""
    report = analyze_program(
        instance.program,
        instance.shared_parameter,
        name=instance.label,
        layer_count=instance.declared_layers,
    )
    return (
        report.occurrence_count,
        report.derivative_program_count,
        report.gate_count,
        report.line_count,
        report.layer_count,
        report.qubit_count,
    )


def format_table(rows: dict[str, tuple], paper: dict[str, tuple]) -> str:
    header = (
        f"{'instance':10s} {'OC':>10s} {'|#∂θ1|':>10s} {'#gates':>12s} "
        f"{'#lines':>12s} {'#layers':>10s} {'#qb':>8s}   (measured/paper)"
    )
    lines = [header, "-" * len(header)]
    for label, measured in rows.items():
        reference = paper.get(label)
        cells = []
        for index, value in enumerate(measured):
            if reference is None:
                cells.append(f"{value}")
            else:
                cells.append(f"{value}/{reference[index]}")
        lines.append(
            f"{label:10s} {cells[0]:>10s} {cells[1]:>10s} {cells[2]:>12s} "
            f"{cells[3]:>12s} {cells[4]:>10s} {cells[5]:>8s}"
        )
    return "\n".join(lines)


@pytest.fixture(scope="session")
def table2_instances():
    return table2_suite()


@pytest.fixture(scope="session")
def table3_instances():
    return table3_suite()


#: Formatted report blocks registered by the benchmark modules, printed at session end.
REPORTS: dict[str, str] = {}


def register_report(title: str, body: str) -> None:
    """Register a formatted table/figure reproduction to print after the run."""
    REPORTS[title] = body


def pytest_sessionfinish(session, exitstatus):
    if not REPORTS:
        return
    terminal = session.config.pluginmanager.get_plugin("terminalreporter")
    write = terminal.write_line if terminal is not None else print
    write("")
    write("=" * 78)
    write("Reproduced evaluation artifacts (paper tables and figures)")
    write("=" * 78)
    for title in sorted(REPORTS):
        write("")
        write(title)
        for line in REPORTS[title].splitlines():
            write(line)
