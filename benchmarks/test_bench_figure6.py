"""Figure 6 — training the controlled VQC classifier vs. the plain one.

The paper's case study (Section 8.1) trains two 4-qubit classifiers on the
labelling ``f(z) = ¬(z1 ⊕ z4)``:

* ``P1`` (no control, 24 parameters) — its loss plateaus early and its
  accuracy stays at 50 %, because without entanglement or measurement
  feedback the readout qubit cannot depend on ``z1``;
* ``P2`` (with a measurement-controlled branch, 36 parameters) — its loss
  keeps decreasing towards zero and it classifies perfectly.

The paper reports the plateau/convergence *shape* after 1000 epochs; the
benchmark reproduces the same shape with a short run (the separation is
already unambiguous after a handful of epochs).  The benchmark timings cover
the short training runs themselves and one full gradient-descent epoch of
each classifier — the unit of work the long run repeats.

The reproduced loss curves are printed at the end of the benchmark session.
"""

from __future__ import annotations

import pytest

from repro.api import StatevectorBackend
from repro.vqc.classifier import build_p1, build_p2, build_p3
from repro.vqc.datasets import paper_dataset
from repro.vqc.training import GradientDescentTrainer, TrainingConfig

EPOCHS = 10
LEARNING_RATE = 0.5

_results = {}
_tiers = {}


@pytest.fixture(scope="module")
def dataset():
    return paper_dataset()


def _train(classifier, dataset, epochs=EPOCHS):
    trainer = GradientDescentTrainer(
        classifier,
        TrainingConfig(epochs=epochs, learning_rate=LEARNING_RATE, record_accuracy=True, seed=0),
    )
    # Attribute the run to the backend tier that actually executed the
    # forward program, so the perf trajectory across PRs stays legible:
    # "pure" (P1), "trajectory" (P2/P3 since the branch-splitting tier) or
    # "density" (any run on a non-statevector backend).
    backend = trainer.estimator.backend
    _tiers[classifier.name] = (
        backend.tier_for(classifier.program)
        if isinstance(backend, StatevectorBackend)
        else "density"
    )
    return trainer.train(dataset)


def _register_curves():
    from benchmarks.conftest import record_result, register_report

    lines = [f"squared loss per epoch ({EPOCHS} epochs, learning rate {LEARNING_RATE})"]
    for name, result in _results.items():
        curve = ", ".join(f"{value:.3f}" for value in result.losses)
        tier = _tiers.get(name, "density")
        lines.append(f"  {name:20s} losses: [{curve}]")
        lines.append(
            f"  {name:20s} final loss {result.final_loss:.4f}, "
            f"final accuracy {result.accuracies[-1]:.2f}, backend tier: {tier}"
        )
        record_result(
            "figure6",
            name,
            {
                "epochs": EPOCHS,
                "learning_rate": LEARNING_RATE,
                "tier": tier,
                "losses": list(result.losses),
                "accuracies": list(result.accuracies),
            },
        )
    lines.append(
        "  paper (1000 epochs): P1 plateaus (minimum 0.5 on its loss scale, 50% accuracy); "
        "P2 keeps decreasing to 0.016 (perfect classification)"
    )
    register_report("Figure 6 — training P1 (no control) vs P2 (with control)", "\n".join(lines))


class TestFigure6Shape:
    def test_p1_without_control_plateaus_at_chance_level(self, benchmark, dataset):
        result = benchmark.pedantic(lambda: _train(build_p1(), dataset), rounds=1, iterations=1)
        _results["P1 (no control)"] = result
        _register_curves()
        # The plateau: the loss stops improving well above zero — over the last
        # three epochs it moves by less than a few percent of its value ...
        assert result.best_loss > 1.5
        late_improvement = result.losses[-4] - result.losses[-1]
        assert late_improvement < 0.15 * result.final_loss
        # ... and the classifier never beats random guessing.
        assert result.accuracies[-1] == pytest.approx(0.5, abs=0.13)

    def test_p2_with_control_keeps_decreasing_to_near_zero(self, benchmark, dataset):
        result = benchmark.pedantic(lambda: _train(build_p2(), dataset), rounds=1, iterations=1)
        _results["P2 (with control)"] = result
        _register_curves()
        assert result.final_loss < 0.1
        assert result.final_loss < result.losses[1] * 0.2
        assert result.accuracies[-1] == pytest.approx(1.0)
        # The headline claim of Figure 6: the controlled classifier wins decisively.
        p1 = _results.get("P1 (no control)")
        if p1 is not None:
            assert result.final_loss < p1.final_loss / 10
            assert result.accuracies[-1] > p1.accuracies[-1]
        # Attribution: P2's control structure runs on the trajectory tier now.
        assert _tiers["P2 (with control)"] == "trajectory"

    def test_p3_with_loop_trains_on_the_trajectory_tier(self, benchmark, dataset):
        result = benchmark.pedantic(lambda: _train(build_p3(), dataset), rounds=1, iterations=1)
        _results["P3 (with loop)"] = result
        _register_curves()
        assert _tiers["P3 (with loop)"] == "trajectory"
        # The loop classifier is an extension instance: pin only that it
        # optimizes (the loss moves below its start) and stays well-formed.
        assert result.final_loss < result.losses[0]
        assert all(0.0 <= a <= 1.0 for a in result.accuracies)


class TestEpochCost:
    def test_benchmark_p1_epoch(self, benchmark, dataset):
        classifier = build_p1()
        trainer = GradientDescentTrainer(classifier, TrainingConfig(epochs=1))
        binding = classifier.initial_binding(seed=0)
        benchmark.pedantic(
            lambda: trainer.loss_gradient(dataset, binding), rounds=2, iterations=1
        )

    def test_benchmark_p2_epoch(self, benchmark, dataset):
        classifier = build_p2()
        trainer = GradientDescentTrainer(classifier, TrainingConfig(epochs=1))
        binding = classifier.initial_binding(seed=0)
        benchmark.pedantic(
            lambda: trainer.loss_gradient(dataset, binding), rounds=2, iterations=1
        )
