"""Estimator vs. shim path on the Figure 6 training loop.

The seed training loop evaluated the forward classifier three times per
data point per epoch — once for the loss, once for the recorded accuracy,
and once more inside the gradient for the chain-rule weights — and went
through the legacy free functions, which build a fresh single-call
estimator each time and therefore share nothing.  The
:class:`repro.api.Estimator` path computes one forward pass per epoch and
memoizes every simulation in its denotation cache, so the cache holds each
compiled program's output (at most) once per ``(binding, input state)``.

This module verifies the two acceptance claims of the API redesign:

* **bit-for-bit** — training through the estimator reproduces the exact
  loss trajectory of the seed (shim-path) arithmetic, number for number;
* **≥ 2× fewer denote calls per epoch** on the forward (value) evaluations
  — 3 per point drop to 1 per point — while the derivative simulations are
  already minimal on both paths (each compiled derivative program is
  denoted exactly once per point, asserted below via the cache counters).
"""

from __future__ import annotations

import pytest

from repro.lang.parameters import ParameterBinding
from repro.semantics import denotational
from repro.vqc.classifier import build_p1, build_p2
from repro.vqc.datasets import paper_dataset
from repro.vqc.training import (
    GradientDescentTrainer,
    TrainingConfig,
    squared_loss,
    squared_loss_gradient_weight,
)
from repro.autodiff.execution import differentiate_and_compile

EPOCHS = 3
LEARNING_RATE = 0.5

_summary: dict[str, str] = {}


@pytest.fixture(scope="module")
def dataset():
    return paper_dataset()


class DenoteCounter:
    """Count top-level ``denote`` invocations while installed."""

    def __init__(self):
        self.count = 0
        self._real = None

    def __enter__(self):
        self._real = denotational.denote

        def counting(program, state, binding=None):
            self.count += 1
            return self._real(program, state, binding)

        denotational.denote = counting
        return self

    def __exit__(self, *exc):
        denotational.denote = self._real
        return False


def _shim_train(classifier, dataset, epochs):
    """The seed training loop, arithmetic-identical, through the legacy shims.

    Per epoch: loss (one forward evaluation per point), accuracy (another),
    gradient (a third, plus one ``DerivativeProgramSet.evaluate`` per
    parameter per point).  Nothing is shared between the calls — this is
    exactly what the free-function API allowed.
    """
    observable, targets = classifier.readout_local_observable()
    program_sets = tuple(
        differentiate_and_compile(classifier.program, parameter)
        for parameter in classifier.parameters
    )

    def predict(bits, binding):
        # The seed's predict_probability: a fresh denotation per call, local
        # readout — arithmetic-identical to Estimator.value, but uncached.
        state = classifier.input_state(bits)
        output = denotational.denote(classifier.program, state, binding)
        return output.expectation(observable, targets)

    def loss(binding):
        predictions = [predict(bits, binding) for bits, _ in dataset]
        return squared_loss(predictions, [label for _, label in dataset])

    def accuracy(binding):
        correct = sum(
            1
            for bits, label in dataset
            if (1 if predict(bits, binding) >= 0.5 else 0) == int(label)
        )
        return correct / len(dataset)

    def loss_gradient(binding):
        gradient = [0.0] * len(classifier.parameters)
        for bits, label in dataset:
            state = classifier.input_state(bits)
            weight = squared_loss_gradient_weight(predict(bits, binding), label)
            if abs(weight) < 1e-15:
                continue
            for index, program_set in enumerate(program_sets):
                gradient[index] += weight * program_set.evaluate(
                    observable, state, binding, targets=targets
                )
        return gradient

    binding = classifier.initial_binding(seed=0)
    losses, accuracies = [], []
    for _ in range(epochs):
        losses.append(loss(binding))
        accuracies.append(accuracy(binding))
        gradient = loss_gradient(binding)
        binding = ParameterBinding(
            {
                parameter: binding[parameter] - LEARNING_RATE * gradient[index]
                for index, parameter in enumerate(classifier.parameters)
            }
        )
    losses.append(loss(binding))
    accuracies.append(accuracy(binding))
    return losses, accuracies


def _estimator_train(classifier, dataset, epochs):
    # backend="exact-density" pins the historical all-density arithmetic:
    # this benchmark is about the denotation cache, and its bit-for-bit and
    # denote-count assertions are stated against the density shim path (the
    # default "auto" backend routes measurement-free work through the
    # statevector tier, which neither calls denotational.denote nor
    # reproduces the density arithmetic bit for bit).
    trainer = GradientDescentTrainer(
        classifier,
        TrainingConfig(
            epochs=epochs,
            learning_rate=LEARNING_RATE,
            record_accuracy=True,
            seed=0,
            backend="exact-density",
        ),
    )
    result = trainer.train(dataset)
    return result, trainer


def _run_comparison(build, dataset, benchmark):
    classifier = build()
    # Warm the compile-time artifacts outside the measured region on both
    # paths; the comparison is about execution-time simulations.
    shim_counter = DenoteCounter()
    with shim_counter:
        shim_losses, shim_accuracies = _shim_train(classifier, dataset, EPOCHS)

    est_counter = DenoteCounter()
    with est_counter:
        result, trainer = benchmark.pedantic(
            lambda: _estimator_train(build(), dataset, EPOCHS), rounds=1, iterations=1
        )

    # Bit-for-bit: the estimator path reproduces the shim-path trajectory.
    assert result.losses == shim_losses
    assert result.accuracies == shim_accuracies

    points = len(dataset)
    passes = EPOCHS + 1  # one per epoch plus the final evaluation
    derivative_per_epoch = sum(
        trainer.estimator.program_set(p).nonaborting_count
        for p in classifier.parameters
    ) * points
    # Forward denote calls: the shim path pays 3 per point per pass (loss,
    # accuracy, gradient weights — the final pass has no gradient), the
    # estimator exactly 1.
    shim_forward = shim_counter.count - EPOCHS * derivative_per_epoch
    est_forward = est_counter.count - EPOCHS * derivative_per_epoch
    assert est_forward == passes * points
    assert shim_forward == (3 * EPOCHS + 2) * points
    ratio = shim_forward / est_forward
    assert ratio >= 2.0

    # The cache property: every simulation was a miss exactly once — each
    # compiled program's output is held at most once per (binding, state).
    stats = trainer.estimator.cache_stats
    assert stats.misses == est_counter.count

    _summary[classifier.name] = (
        f"  {classifier.name:18s}: forward denotes/epoch {shim_forward / passes:6.1f} → "
        f"{est_forward / passes:5.1f}  ({ratio:.1f}× fewer), "
        f"derivative denotes/epoch {derivative_per_epoch} (both paths, minimal), "
        f"total {shim_counter.count} → {est_counter.count} "
        f"({shim_counter.count / est_counter.count:.2f}×)"
    )
    from benchmarks.conftest import record_result

    record_result(
        "estimator_cache",
        classifier.name,
        {
            "epochs": EPOCHS,
            "shim_denotes": shim_counter.count,
            "estimator_denotes": est_counter.count,
            "forward_denotes_shim": shim_forward,
            "forward_denotes_estimator": est_forward,
            "forward_ratio": ratio,
            "derivative_denotes_per_epoch": derivative_per_epoch,
            "bit_for_bit": True,
        },
    )
    _register()


def _register():
    from benchmarks.conftest import register_report

    lines = [
        f"{EPOCHS}-epoch Figure 6 runs; trajectories bit-for-bit identical on both paths",
        *_summary.values(),
        "  (the denotation cache holds each compiled program's output at most once",
        "   per (binding, input state); derivative simulations are already minimal,",
        "   so the ≥2× saving is on the forward/value evaluations: 3/point → 1/point)",
    ]
    register_report(
        "Estimator vs shim path — denote calls per Figure 6 training epoch",
        "\n".join(lines),
    )


class TestEstimatorCacheFigure6:
    def test_p1_estimator_vs_shim(self, benchmark, dataset):
        _run_comparison(build_p1, dataset, benchmark)

    def test_p2_estimator_vs_shim(self, benchmark, dataset):
        _run_comparison(build_p2, dataset, benchmark)
