"""What resilience costs (`repro.service.resilience`) — ``BENCH_resilience.json``.

Two numbers, one per direction of the robustness trade:

* **fault-free overhead** — the same workload drained through a plain
  PR-5-style service and through a fully-armed resilient one (retry
  policy, circuit breaker, a 30 s deadline on every request).  The
  resilience machinery is a fast-path no-op when nothing fails — the
  prune scan finds no doomed handle, the retry loop runs once — so the
  overhead must stay **≤ 5 %** (asserted in full mode, min-of-interleaved
  repeats against fresh bindings so neither side rides the cache).
* **recovery throughput** — the workload under a seeded 10 %-transient
  :class:`~repro.service.FaultSchedule` with retries enabled: every
  handle must still resolve to within 1e-10 of the clean run, and the
  recorded throughput ratio says what surviving that fault rate costs.
"""

from __future__ import annotations

import time

import numpy as np

from repro.lang.parameters import ParameterBinding
from repro.api import Estimator, StatevectorBackend
from repro.service import (
    EstimatorService,
    FaultSchedule,
    FaultyBackend,
    RetryPolicy,
)

from benchmarks.conftest import record_result, register_report, smoke_mode
from benchmarks.test_bench_service import _basis_vectors, _ladder

SMOKE = smoke_mode()

#: Register width / input points / interleaved timing repeats.
QUBITS = 4 if SMOKE else 8
POINTS = 6 if SMOKE else 24
REPEATS = 2 if SMOKE else 5

_results: dict[str, dict] = {}


def _workload():
    program, layout, binding, observable, qubits = _ladder(QUBITS)
    return program, tuple(binding), observable, qubits, _basis_vectors(
        layout, POINTS
    )


def _bindings(parameters, count: int) -> list[ParameterBinding]:
    """One fresh parameter point per timing pass: every pass simulates."""
    return [
        ParameterBinding.from_values(
            parameters, np.linspace(0.11 + 0.07 * index, 0.9 + 0.05 * index, len(parameters))
        )
        for index in range(count)
    ]


def _drain(service, estimator, inputs, binding, *, timeout=None):
    handles = service.submit_many(
        [
            estimator.request_value(state, binding, timeout=timeout)
            for state in inputs
        ]
    )
    service.flush()
    return [handle.result() for handle in handles]


def _stream(service, estimator, inputs, binding):
    """Drain point by point — one backend call (one fault draw) per request."""
    values = []
    for state in inputs:
        handle = service.submit(estimator.request_value(state, binding))
        service.flush()
        values.append(handle.result())
    return values


def test_fault_free_overhead():
    program, parameters, observable, qubits, inputs = _workload()
    estimator = Estimator(program, observable, targets=(qubits[-1],), backend="auto")
    plain = EstimatorService("auto")
    resilient = EstimatorService(
        "auto", retry=RetryPolicy(attempts=3), breaker=True
    )
    passes = _bindings(parameters, REPEATS)

    plain_s = resilient_s = float("inf")
    for binding in passes:
        start = time.perf_counter()
        plain_values = _drain(plain, estimator, inputs, binding)
        plain_s = min(plain_s, time.perf_counter() - start)

        start = time.perf_counter()
        resilient_values = _drain(
            resilient, estimator, inputs, binding, timeout=30.0
        )
        resilient_s = min(resilient_s, time.perf_counter() - start)

        # Same drains, same numbers — the resilience wrapping is invisible.
        assert plain_values == resilient_values

    overhead = resilient_s / plain_s - 1.0
    _results["fault_free_overhead"] = {
        "qubits": QUBITS,
        "points": POINTS,
        "repeats": REPEATS,
        "plain_s": plain_s,
        "resilient_s": resilient_s,
        "overhead_fraction": overhead,
        "retries": resilient.stats.retries,
        "timeouts": resilient.stats.timeouts,
    }
    record_result("resilience", "fault_free_overhead", _results["fault_free_overhead"])
    assert resilient.stats.retries == 0
    assert resilient.stats.timeouts == 0
    if not SMOKE:
        assert resilient_s <= plain_s * 1.05 + 0.005, (
            f"resilience wrapping cost {overhead:.1%} on the fault-free path"
        )


def test_recovery_throughput_under_transient_faults():
    program, parameters, observable, qubits, inputs = _workload()
    binding = _bindings(parameters, 1)[0]
    estimator = Estimator(program, observable, targets=(qubits[-1],), backend="auto")

    clean_service = EstimatorService(StatevectorBackend())
    start = time.perf_counter()
    clean_values = _stream(clean_service, estimator, inputs, binding)
    clean_s = time.perf_counter() - start

    schedule = FaultSchedule.probabilistic(0, transient=0.10)
    faulty_service = EstimatorService(
        FaultyBackend(StatevectorBackend(), schedule),
        retry=RetryPolicy(attempts=6, base_delay=0.0),
    )
    start = time.perf_counter()
    recovered_values = _stream(faulty_service, estimator, inputs, binding)
    faulty_s = time.perf_counter() - start

    # Recovery must be *exact*: every retried group reproduces the clean
    # number, no handle is lost to the fault schedule — and the schedule
    # must actually have fired, or the benchmark measured nothing.
    assert len(schedule.injected) > 0
    assert faulty_service.stats.retries > 0
    assert (
        np.max(np.abs(np.array(recovered_values) - np.array(clean_values))) <= 1e-10
    )
    assert faulty_service.stats.failed == 0
    assert faulty_service.stats.completed == len(inputs)

    throughput = len(inputs) / faulty_s if faulty_s > 0 else float("inf")
    _results["recovery_throughput"] = {
        "transient_rate": 0.10,
        "seed": 0,
        "requests": len(inputs),
        "clean_s": clean_s,
        "faulty_s": faulty_s,
        "requests_per_s": throughput,
        "throughput_ratio": clean_s / faulty_s if faulty_s > 0 else 1.0,
        "retries": faulty_service.stats.retries,
        "injected": len(schedule.injected),
    }
    record_result(
        "resilience", "recovery_throughput", _results["recovery_throughput"]
    )


def teardown_module(module):
    if not _results:
        return
    lines = ["resilience overhead and recovery", "-" * 34]
    fault_free = _results.get("fault_free_overhead")
    if fault_free:
        lines.append(
            f"fault-free overhead: {fault_free['overhead_fraction']:+.1%} "
            f"(plain {fault_free['plain_s']:.4f}s vs resilient "
            f"{fault_free['resilient_s']:.4f}s)"
        )
    recovery = _results.get("recovery_throughput")
    if recovery:
        lines.append(
            f"10% transient faults: {recovery['requests']} requests recovered "
            f"exactly, {recovery['retries']} retries, throughput ratio "
            f"{recovery['throughput_ratio']:.2f}"
        )
    register_report("resilience", "\n".join(lines))
