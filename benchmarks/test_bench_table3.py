"""Table 3 (Appendix F) — compiler output on all twenty-four benchmark instances.

The appendix table extends Table 2 with the small-scale instances and their
basic/shared variants.  The per-instance benchmarks time the code
transformation + compilation pipeline at small scale (the medium/large
instances are timed by the Table 2 benchmark); one further benchmark times
the whole 24-row table computation, which also asserts the resource bound on
every row and registers the complete reproduced table for printing at the
end of the session.
"""

from __future__ import annotations

import pytest

from repro.analysis.resources import derivative_program_count, occurrence_count
from repro.vqc.generators import build_instance, table3_suite

from benchmarks.conftest import (
    PAPER_TABLE3,
    format_table,
    measured_row,
    record_result,
    register_report,
)

SMALL_SPECS = [
    (family, "S", variant)
    for family in ("QNN", "VQE", "QAOA")
    for variant in ("b", "s", "i", "w")
]


@pytest.mark.parametrize("family,scale,variant", SMALL_SPECS)
def test_table3_small_instance_row(benchmark, family, scale, variant):
    instance = build_instance(family, scale, variant)
    count = benchmark(
        lambda: derivative_program_count(instance.program, instance.shared_parameter)
    )
    oc = occurrence_count(instance.program, instance.shared_parameter)
    assert count <= oc
    if variant == "b":
        assert oc == 1 and count == 1
    if variant == "s":
        assert oc > 1 and count == oc
    if variant == "w":
        assert count < oc


def test_table3_full_suite_rows(benchmark):
    """Compute every Table 3 row, check the bound, and register the table."""

    def compute_rows():
        return {instance.label: measured_row(instance) for instance in table3_suite()}

    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    for label, row in rows.items():
        assert row[1] <= row[0], f"{label}: |#∂θ1| exceeds OC"
        assert row[5] == PAPER_TABLE3[label][5], f"{label}: qubit count differs from the paper"
        record_result(
            "table3",
            label,
            dict(
                zip(
                    ("OC", "derivative_programs", "gates", "lines", "layers", "qubits"),
                    row,
                )
            ),
        )
    register_report(
        "Table 3 — compiler output on all benchmark instances (measured/paper)",
        format_table(rows, PAPER_TABLE3),
    )
