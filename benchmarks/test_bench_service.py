"""The request protocol under load (the PR-5 tentpole).

Three comparisons, all landing in ``BENCH_service.json``:

* **coalesced batch vs per-call loop** — a mixed-tier workload (a
  measurement-free ladder on the pure tier plus a ``case`` program on the
  trajectory tier, many input points each) submitted as one request batch
  through an :class:`~repro.service.EstimatorService` versus the blocking
  per-call ``Estimator.value`` loop the old seam forced.  Planning folds
  each program's points into a single batched backend call; the acceptance
  floor (full mode) is **≥ 2×**.
* **cache-hit-heavy repeats** — the same workload resubmitted to the warm
  service (every point already denoted, duplicates coalesced) versus the
  legacy fresh-estimator-per-call pattern (what the pre-``repro.api``
  shims did: nothing shared, everything re-simulated).  Floor: **≥ 10×**.
* **inline vs thread-pool executor** — the same multi-group drain through
  both executors; results must agree bit for bit (the executors run the
  identical grouped calls), the timing ratio is recorded (the thread pool
  needs real cores to win — the CI box has one).

The Figure 6 bit-for-bit pin lives in ``test_bench_estimator_cache.py``:
training runs through the service's inline executor and must reproduce the
seed loss trajectory number for number — that assertion now exercises this
subsystem end to end.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.lang.builder import case_on_qubit, rx, rxx, ry, seq
from repro.lang.parameters import ParameterBinding, ParameterVector
from repro.sim.hilbert import RegisterLayout
from repro.sim.statevector import StateVector
from repro.api import Estimator
from repro.service import EstimatorService

from benchmarks.conftest import record_result, register_report, smoke_mode

SMOKE = smoke_mode()

#: Register width of the workload programs.
QUBITS = 4 if SMOKE else 8
#: Input points per program.
POINTS = 6 if SMOKE else 24
#: Warm-service resubmissions of the whole workload.
REPEATS = 2 if SMOKE else 3

_results: dict[str, dict] = {}


def _ladder(num_qubits: int, num_parameters: int = 2, *, branching: bool = False):
    """A layered circuit; ``branching=True`` adds a measurement-controlled
    branch so the program routes to the trajectory tier."""
    qubits = [f"q{i}" for i in range(num_qubits)]
    parameters = ParameterVector("t", num_parameters).as_tuple()
    statements = [rx(parameters[i % num_parameters], qubits[i]) for i in range(num_qubits)]
    statements += [rxx(0.4, qubits[i], qubits[i + 1]) for i in range(num_qubits - 1)]
    if branching:
        statements.append(
            case_on_qubit(qubits[0], {0: ry(parameters[0], qubits[1]), 1: rx(0.7, qubits[1])})
        )
    else:
        statements += [ry(parameters[0], qubits[0])]
    program = seq(statements)
    layout = RegisterLayout(qubits)
    binding = ParameterBinding.from_values(
        parameters, np.linspace(0.3, 1.1, num_parameters)
    )
    observable = np.array([[1, 0], [0, -1]], dtype=complex)
    return program, layout, binding, observable, qubits


def _basis_vectors(layout, count: int) -> list[StateVector]:
    dim = layout.total_dim
    vectors = []
    for index in range(count):
        amplitudes = np.zeros(dim, dtype=complex)
        amplitudes[index % dim] = 1.0
        vectors.append(StateVector(layout, amplitudes))
    return vectors


def _workload():
    """(estimator factory args, binding, inputs) per program — mixed tiers."""
    pure = _ladder(QUBITS)
    branching = _ladder(QUBITS, branching=True)
    entries = []
    for program, layout, binding, observable, qubits in (pure, branching):
        entries.append(
            {
                "program": program,
                "binding": binding,
                "observable": observable,
                "targets": (qubits[-1],),
                "inputs": _basis_vectors(layout, POINTS),
            }
        )
    return entries


def _fresh_estimators(entries) -> list[Estimator]:
    return [
        Estimator(
            entry["program"],
            entry["observable"],
            targets=entry["targets"],
            backend="auto",
        )
        for entry in entries
    ]


def test_coalesced_batch_vs_per_call_loop():
    entries = _workload()

    # The blocking per-call loop: held estimators, one .value per point.
    per_call_estimators = _fresh_estimators(entries)
    start = time.perf_counter()
    per_call_values = [
        [
            estimator.value(state, entry["binding"])
            for state in entry["inputs"]
        ]
        for estimator, entry in zip(per_call_estimators, entries)
    ]
    per_call_s = time.perf_counter() - start

    # The request protocol: every point of every program in one drain.
    service = EstimatorService("auto")
    estimators = _fresh_estimators(entries)
    start = time.perf_counter()
    handles = [
        service.submit_many(
            [
                estimator.request_value(state, entry["binding"])
                for state in entry["inputs"]
            ]
        )
        for estimator, entry in zip(estimators, entries)
    ]
    service.flush()
    batched_values = [[handle.result() for handle in batch] for batch in handles]
    batched_s = time.perf_counter() - start

    for loop_row, batch_row in zip(per_call_values, batched_values):
        assert np.allclose(loop_row, batch_row, atol=1e-10)

    speedup = per_call_s / batched_s
    _results["mixed_tier"] = {
        "qubits": QUBITS,
        "points_per_program": POINTS,
        "programs": len(entries),
        "per_call_s": per_call_s,
        "coalesced_batch_s": batched_s,
        "speedup": speedup,
        "groups": service.stats.groups,
    }
    record_result("service", "mixed_tier", _results["mixed_tier"])
    if not SMOKE:
        assert speedup >= 2.0, f"coalesced batching won only {speedup:.2f}x"

    # -- cache-hit-heavy repeats vs the legacy per-call pattern ------------
    warm_s = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        repeat_handles = [
            service.submit_many(
                [
                    estimator.request_value(state, entry["binding"])
                    for state in entry["inputs"]
                ]
            )
            for estimator, entry in zip(estimators, entries)
        ]
        service.flush()
        for batch in repeat_handles:
            for handle in batch:
                handle.result()
        warm_s = min(warm_s, time.perf_counter() - start)

    # The legacy pattern: a fresh single-call estimator per evaluation
    # (exactly what the pre-api shims do) — nothing shared, everything
    # re-simulated.  One pass is enough to time it.
    start = time.perf_counter()
    for entry in entries:
        for state in entry["inputs"]:
            Estimator(
                entry["program"],
                entry["observable"],
                targets=entry["targets"],
                backend="auto",
            ).value(state, entry["binding"])
    legacy_s = time.perf_counter() - start

    repeat_speedup = legacy_s / warm_s
    _results["cache_hot_repeats"] = {
        "warm_service_s": warm_s,
        "legacy_per_call_s": legacy_s,
        "speedup": repeat_speedup,
        "repeats": REPEATS,
    }
    record_result("service", "cache_hot_repeats", _results["cache_hot_repeats"])
    if not SMOKE:
        assert repeat_speedup >= 10.0, (
            f"warm service beat the legacy per-call pattern only {repeat_speedup:.1f}x"
        )


def test_inline_vs_thread_executor():
    entries = _workload()

    def run(executor):
        service = EstimatorService("auto", executor=executor)
        estimators = _fresh_estimators(entries)
        start = time.perf_counter()
        handles = [
            service.submit_many(
                [
                    estimator.request_value(state, entry["binding"])
                    for state in entry["inputs"]
                ]
                + [
                    estimator.request_gradient(entry["inputs"][0], entry["binding"])
                ]
            )
            for estimator, entry in zip(estimators, entries)
        ]
        service.flush()
        results = [
            [np.asarray(handle.result()) for handle in batch] for batch in handles
        ]
        elapsed = time.perf_counter() - start
        service.close()
        return results, elapsed

    inline_results, inline_s = run("inline")
    thread_results, thread_s = run("threads")
    for inline_batch, thread_batch in zip(inline_results, thread_results):
        for a, b in zip(inline_batch, thread_batch):
            # The executors run the identical grouped calls: bit for bit.
            assert np.array_equal(a, b)
    _results["executors"] = {
        "inline_s": inline_s,
        "threads_s": thread_s,
        "ratio": inline_s / thread_s,
    }
    record_result("service", "executors", _results["executors"])


#: Concurrent sessions in the worker bench — each with its own,
#: content-distinct program, so every round drains one group per client.
#: (Identical content would let the client-side result store serve three
#: clients from the fourth's answers — a fine property, but it starves
#: the wire of EXECUTEs and turns the kill storm into a no-op.)
WORKER_CLIENTS = 4


def _worker_rounds():
    """Per-round bindings: distinct parameter points so every round really
    crosses the wire (the client's result store would otherwise serve
    repeats without dispatching — a different benchmark)."""
    base, layout, binding, observable, qubits = _ladder(QUBITS)
    programs = [
        seq([base, ry(0.11 * (client + 1), qubits[0])])
        for client in range(WORKER_CLIENTS)
    ]
    parameters = sorted(binding, key=lambda p: p.name)
    rounds = 2 if SMOKE else 6
    points = 4 if SMOKE else 10
    bindings = [
        ParameterBinding.from_values(
            parameters,
            np.linspace(0.3, 1.1, len(parameters)) + 0.05 * round_index,
        )
        for round_index in range(rounds)
    ]
    states = _basis_vectors(layout, points)
    return programs, observable, qubits, bindings, states


def _drain_workers(executor, programs, observable, qubits, bindings, states):
    """Run the many-client workload through one executor; return
    (values, wall seconds, latencies, failed count)."""
    service = EstimatorService("auto", executor=executor)
    estimators = [
        Estimator(program, observable, targets=(qubits[-1],), backend="auto")
        for program in programs
    ]
    sessions = [
        service.session(name=f"client-{index}")
        for index in range(len(estimators))
    ]
    values, latencies, failed = [], [], 0
    start = time.perf_counter()
    for binding in bindings:
        handles = [
            session.submit(estimator.request_value(state, binding))
            for session, estimator in zip(sessions, estimators)
            for state in states
        ]
        service.flush()
        for handle in handles:
            try:
                values.append(handle.result(timeout=300))
            except Exception:
                failed += 1
                values.append(None)
            latencies.append((handle.done_at or 0.0) - handle.submitted_at)
    elapsed = time.perf_counter() - start
    service.close()
    return values, elapsed, latencies, failed


def test_worker_pool_throughput_and_recovery():
    from repro.service import (
        RetryPolicy,
        SupervisorPolicy,
        WorkerFaultPlan,
        WorkerPoolServiceExecutor,
    )

    programs, observable, qubits, bindings, states = _worker_rounds()
    total = len(programs) * len(bindings) * len(states)

    # Reference bits off the deterministic inline executor.
    reference, _, _, _ = _drain_workers(
        None, programs, observable, qubits, bindings, states
    )

    policy = SupervisorPolicy(call_timeout=120.0, redispatch_limit=5)
    fault_free = WorkerPoolServiceExecutor(max_workers=2, policy=policy)
    clean_values, clean_s, clean_latencies, clean_failed = _drain_workers(
        fault_free, programs, observable, qubits, bindings, states
    )

    # 10% of EXECUTEs kill the worker mid-batch, every generation: the
    # supervisor must respawn and re-dispatch until the bits come back.
    storm_policy = SupervisorPolicy(
        restart=RetryPolicy(attempts=4, base_delay=0.01, max_delay=0.1, jitter=0.0),
        call_timeout=120.0,
        redispatch_limit=5,
    )
    plans = {
        slot: WorkerFaultPlan(kill_rate=0.10, seed=7 + slot, every_generation=True)
        for slot in range(2)
    }
    killer = WorkerPoolServiceExecutor(
        max_workers=2, policy=storm_policy, fault_plans=plans
    )
    faulty_values, faulty_s, faulty_latencies, faulty_failed = _drain_workers(
        killer, programs, observable, qubits, bindings, states
    )
    crashes = killer.telemetry["crashes"]
    redispatches = killer.telemetry["redispatches"]

    # Bit-identical under supervision — with and without the kill storm.
    assert clean_failed == 0 and faulty_failed == 0
    assert clean_values == reference
    assert faulty_values == reference

    clean_throughput = total / clean_s
    faulty_throughput = total / faulty_s
    _results["workers"] = {
        "requests": total,
        "sessions": WORKER_CLIENTS,
        "rounds": len(bindings),
        "clean_s": clean_s,
        "clean_throughput_rps": clean_throughput,
        "clean_latency_p50_ms": float(np.percentile(clean_latencies, 50) * 1e3),
        "clean_latency_p95_ms": float(np.percentile(clean_latencies, 95) * 1e3),
        "kill_rate": 0.10,
        "faulty_s": faulty_s,
        "faulty_throughput_rps": faulty_throughput,
        "faulty_latency_p50_ms": float(np.percentile(faulty_latencies, 50) * 1e3),
        "faulty_latency_p95_ms": float(np.percentile(faulty_latencies, 95) * 1e3),
        "crashes": crashes,
        "redispatches": redispatches,
        "recovery_throughput_ratio": faulty_throughput / clean_throughput,
    }
    record_result("service", "workers", _results["workers"])
    if not SMOKE:
        # Recovery is allowed to cost (respawns, re-dispatched groups,
        # backoff sleeps) but not to collapse: a conservative floor.
        ratio = faulty_throughput / clean_throughput
        assert ratio >= 0.15, f"kill-storm throughput collapsed to {ratio:.2f}x"


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    lines = ["workload: %d programs x %d points, %d qubits, mixed pure/trajectory tiers"
             % (2, POINTS, QUBITS)]
    mixed = _results.get("mixed_tier")
    if mixed:
        lines.append(
            f"per-call loop {mixed['per_call_s'] * 1e3:9.1f} ms | coalesced batch "
            f"{mixed['coalesced_batch_s'] * 1e3:9.1f} ms | {mixed['speedup']:5.1f}x "
            f"({mixed['groups']} backend calls)"
        )
    repeats = _results.get("cache_hot_repeats")
    if repeats:
        lines.append(
            f"legacy per-call {repeats['legacy_per_call_s'] * 1e3:7.1f} ms | warm service "
            f"{repeats['warm_service_s'] * 1e3:9.1f} ms | {repeats['speedup']:5.1f}x"
        )
    executors = _results.get("executors")
    if executors:
        lines.append(
            f"inline executor {executors['inline_s'] * 1e3:7.1f} ms | thread pool "
            f"{executors['threads_s'] * 1e3:9.1f} ms | {executors['ratio']:5.2f}x"
        )
    workers = _results.get("workers")
    if workers:
        lines.append(
            f"worker pool {workers['clean_throughput_rps']:7.1f} req/s "
            f"(p95 {workers['clean_latency_p95_ms']:.1f} ms) | 10%-kill storm "
            f"{workers['faulty_throughput_rps']:7.1f} req/s "
            f"({workers['crashes']} crashes, {workers['redispatches']} re-dispatches, "
            f"{workers['recovery_throughput_ratio']:.2f}x)"
        )
    register_report("EstimatorService: request batching and coalescing", "\n".join(lines))
