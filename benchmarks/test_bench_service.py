"""The request protocol under load (the PR-5 tentpole).

Three comparisons, all landing in ``BENCH_service.json``:

* **coalesced batch vs per-call loop** — a mixed-tier workload (a
  measurement-free ladder on the pure tier plus a ``case`` program on the
  trajectory tier, many input points each) submitted as one request batch
  through an :class:`~repro.service.EstimatorService` versus the blocking
  per-call ``Estimator.value`` loop the old seam forced.  Planning folds
  each program's points into a single batched backend call; the acceptance
  floor (full mode) is **≥ 2×**.
* **cache-hit-heavy repeats** — the same workload resubmitted to the warm
  service (every point already denoted, duplicates coalesced) versus the
  legacy fresh-estimator-per-call pattern (what the pre-``repro.api``
  shims did: nothing shared, everything re-simulated).  Floor: **≥ 10×**.
* **inline vs thread-pool executor** — the same multi-group drain through
  both executors; results must agree bit for bit (the executors run the
  identical grouped calls), the timing ratio is recorded (the thread pool
  needs real cores to win — the CI box has one).

The Figure 6 bit-for-bit pin lives in ``test_bench_estimator_cache.py``:
training runs through the service's inline executor and must reproduce the
seed loss trajectory number for number — that assertion now exercises this
subsystem end to end.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.lang.builder import case_on_qubit, rx, rxx, ry, seq
from repro.lang.parameters import ParameterBinding, ParameterVector
from repro.sim.hilbert import RegisterLayout
from repro.sim.statevector import StateVector
from repro.api import Estimator
from repro.service import EstimatorService

from benchmarks.conftest import record_result, register_report, smoke_mode

SMOKE = smoke_mode()

#: Register width of the workload programs.
QUBITS = 4 if SMOKE else 8
#: Input points per program.
POINTS = 6 if SMOKE else 24
#: Warm-service resubmissions of the whole workload.
REPEATS = 2 if SMOKE else 3

_results: dict[str, dict] = {}


def _ladder(num_qubits: int, num_parameters: int = 2, *, branching: bool = False):
    """A layered circuit; ``branching=True`` adds a measurement-controlled
    branch so the program routes to the trajectory tier."""
    qubits = [f"q{i}" for i in range(num_qubits)]
    parameters = ParameterVector("t", num_parameters).as_tuple()
    statements = [rx(parameters[i % num_parameters], qubits[i]) for i in range(num_qubits)]
    statements += [rxx(0.4, qubits[i], qubits[i + 1]) for i in range(num_qubits - 1)]
    if branching:
        statements.append(
            case_on_qubit(qubits[0], {0: ry(parameters[0], qubits[1]), 1: rx(0.7, qubits[1])})
        )
    else:
        statements += [ry(parameters[0], qubits[0])]
    program = seq(statements)
    layout = RegisterLayout(qubits)
    binding = ParameterBinding.from_values(
        parameters, np.linspace(0.3, 1.1, num_parameters)
    )
    observable = np.array([[1, 0], [0, -1]], dtype=complex)
    return program, layout, binding, observable, qubits


def _basis_vectors(layout, count: int) -> list[StateVector]:
    dim = layout.total_dim
    vectors = []
    for index in range(count):
        amplitudes = np.zeros(dim, dtype=complex)
        amplitudes[index % dim] = 1.0
        vectors.append(StateVector(layout, amplitudes))
    return vectors


def _workload():
    """(estimator factory args, binding, inputs) per program — mixed tiers."""
    pure = _ladder(QUBITS)
    branching = _ladder(QUBITS, branching=True)
    entries = []
    for program, layout, binding, observable, qubits in (pure, branching):
        entries.append(
            {
                "program": program,
                "binding": binding,
                "observable": observable,
                "targets": (qubits[-1],),
                "inputs": _basis_vectors(layout, POINTS),
            }
        )
    return entries


def _fresh_estimators(entries) -> list[Estimator]:
    return [
        Estimator(
            entry["program"],
            entry["observable"],
            targets=entry["targets"],
            backend="auto",
        )
        for entry in entries
    ]


def test_coalesced_batch_vs_per_call_loop():
    entries = _workload()

    # The blocking per-call loop: held estimators, one .value per point.
    per_call_estimators = _fresh_estimators(entries)
    start = time.perf_counter()
    per_call_values = [
        [
            estimator.value(state, entry["binding"])
            for state in entry["inputs"]
        ]
        for estimator, entry in zip(per_call_estimators, entries)
    ]
    per_call_s = time.perf_counter() - start

    # The request protocol: every point of every program in one drain.
    service = EstimatorService("auto")
    estimators = _fresh_estimators(entries)
    start = time.perf_counter()
    handles = [
        service.submit_many(
            [
                estimator.request_value(state, entry["binding"])
                for state in entry["inputs"]
            ]
        )
        for estimator, entry in zip(estimators, entries)
    ]
    service.flush()
    batched_values = [[handle.result() for handle in batch] for batch in handles]
    batched_s = time.perf_counter() - start

    for loop_row, batch_row in zip(per_call_values, batched_values):
        assert np.allclose(loop_row, batch_row, atol=1e-10)

    speedup = per_call_s / batched_s
    _results["mixed_tier"] = {
        "qubits": QUBITS,
        "points_per_program": POINTS,
        "programs": len(entries),
        "per_call_s": per_call_s,
        "coalesced_batch_s": batched_s,
        "speedup": speedup,
        "groups": service.stats.groups,
    }
    record_result("service", "mixed_tier", _results["mixed_tier"])
    if not SMOKE:
        assert speedup >= 2.0, f"coalesced batching won only {speedup:.2f}x"

    # -- cache-hit-heavy repeats vs the legacy per-call pattern ------------
    warm_s = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        repeat_handles = [
            service.submit_many(
                [
                    estimator.request_value(state, entry["binding"])
                    for state in entry["inputs"]
                ]
            )
            for estimator, entry in zip(estimators, entries)
        ]
        service.flush()
        for batch in repeat_handles:
            for handle in batch:
                handle.result()
        warm_s = min(warm_s, time.perf_counter() - start)

    # The legacy pattern: a fresh single-call estimator per evaluation
    # (exactly what the pre-api shims do) — nothing shared, everything
    # re-simulated.  One pass is enough to time it.
    start = time.perf_counter()
    for entry in entries:
        for state in entry["inputs"]:
            Estimator(
                entry["program"],
                entry["observable"],
                targets=entry["targets"],
                backend="auto",
            ).value(state, entry["binding"])
    legacy_s = time.perf_counter() - start

    repeat_speedup = legacy_s / warm_s
    _results["cache_hot_repeats"] = {
        "warm_service_s": warm_s,
        "legacy_per_call_s": legacy_s,
        "speedup": repeat_speedup,
        "repeats": REPEATS,
    }
    record_result("service", "cache_hot_repeats", _results["cache_hot_repeats"])
    if not SMOKE:
        assert repeat_speedup >= 10.0, (
            f"warm service beat the legacy per-call pattern only {repeat_speedup:.1f}x"
        )


def test_inline_vs_thread_executor():
    entries = _workload()

    def run(executor):
        service = EstimatorService("auto", executor=executor)
        estimators = _fresh_estimators(entries)
        start = time.perf_counter()
        handles = [
            service.submit_many(
                [
                    estimator.request_value(state, entry["binding"])
                    for state in entry["inputs"]
                ]
                + [
                    estimator.request_gradient(entry["inputs"][0], entry["binding"])
                ]
            )
            for estimator, entry in zip(estimators, entries)
        ]
        service.flush()
        results = [
            [np.asarray(handle.result()) for handle in batch] for batch in handles
        ]
        elapsed = time.perf_counter() - start
        service.close()
        return results, elapsed

    inline_results, inline_s = run("inline")
    thread_results, thread_s = run("threads")
    for inline_batch, thread_batch in zip(inline_results, thread_results):
        for a, b in zip(inline_batch, thread_batch):
            # The executors run the identical grouped calls: bit for bit.
            assert np.array_equal(a, b)
    _results["executors"] = {
        "inline_s": inline_s,
        "threads_s": thread_s,
        "ratio": inline_s / thread_s,
    }
    record_result("service", "executors", _results["executors"])


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    lines = ["workload: %d programs x %d points, %d qubits, mixed pure/trajectory tiers"
             % (2, POINTS, QUBITS)]
    mixed = _results.get("mixed_tier")
    if mixed:
        lines.append(
            f"per-call loop {mixed['per_call_s'] * 1e3:9.1f} ms | coalesced batch "
            f"{mixed['coalesced_batch_s'] * 1e3:9.1f} ms | {mixed['speedup']:5.1f}x "
            f"({mixed['groups']} backend calls)"
        )
    repeats = _results.get("cache_hot_repeats")
    if repeats:
        lines.append(
            f"legacy per-call {repeats['legacy_per_call_s'] * 1e3:7.1f} ms | warm service "
            f"{repeats['warm_service_s'] * 1e3:9.1f} ms | {repeats['speedup']:5.1f}x"
        )
    executors = _results.get("executors")
    if executors:
        lines.append(
            f"inline executor {executors['inline_s'] * 1e3:7.1f} ms | thread pool "
            f"{executors['threads_s'] * 1e3:9.1f} ms | {executors['ratio']:5.2f}x"
        )
    register_report("EstimatorService: request batching and coalescing", "\n".join(lines))
