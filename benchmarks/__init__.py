"""Benchmark harness package.

The ``__init__`` matters: without it pytest imports ``conftest.py`` as a
top-level ``conftest`` module while the benchmark modules import
``benchmarks.conftest`` — two separate module objects, so state registered
by the modules (reports, machine-readable results) is invisible to the
session-finish hook that prints and writes it.  As a package, both resolve
to the same ``benchmarks.conftest`` instance.
"""
