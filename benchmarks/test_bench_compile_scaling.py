"""Ablation — scaling of the compile-time pipeline with program structure.

DESIGN.md calls out two design choices whose cost profile is worth
measuring:

* bounded while-loops are handled through their macro expansion, so the
  transformation/compilation cost grows with the loop nesting depth (the
  ``L,w`` instances are the extreme case);
* the additive intermediate representation keeps the *number* of compiled
  programs bounded by the occurrence count even though the additive program
  itself grows.

The benchmarks time the pipeline at increasing nesting depth and layer
count, and the assertions pin the growth of the compiled multiset to the
occurrence-count bound (i.e. no exponential blow-up in the number of
programs that must be executed).
"""

from __future__ import annotations

import pytest

from repro.analysis.resources import derivative_program_count, occurrence_count
from repro.lang.builder import bounded_while_on_qubit, rx, ry, seq
from repro.lang.parameters import Parameter
from repro.autodiff.execution import differentiate_and_compile

THETA = Parameter("theta")


def nested_while_program(depth: int):
    """B; while(2){ B; while(2){ ... } } with a two-rotation block per level."""
    block = lambda level: seq([rx(THETA, "q1"), ry(THETA, "q2")])
    body = block(depth)
    for level in reversed(range(1, depth)):
        body = seq([block(level), bounded_while_on_qubit("q1", body, 2)])
    return body


def layered_circuit(layers: int):
    return seq([rx(THETA, "q1") if i % 2 == 0 else ry(THETA, "q2") for i in range(layers)])


class TestCountScaling:
    @pytest.mark.parametrize("depth", [1, 2, 3, 4])
    def test_nested_whiles_count_grows_linearly_not_exponentially(self, depth):
        program = nested_while_program(depth)
        oc = occurrence_count(program, THETA)
        count = derivative_program_count(program, THETA)
        # OC doubles per nesting level; the compiled count grows by 2 per level.
        assert count == 2 * depth
        assert oc == 2 * (2**depth - 1)
        assert count <= oc

    @pytest.mark.parametrize("layers", [2, 8, 16])
    def test_circuit_count_equals_layers(self, layers):
        program = layered_circuit(layers)
        assert derivative_program_count(program, THETA) == layers


class TestPipelineCost:
    @pytest.mark.parametrize("depth", [2, 4])
    def test_benchmark_nested_while_pipeline(self, benchmark, depth):
        program = nested_while_program(depth)
        result = benchmark(lambda: differentiate_and_compile(program, THETA))
        assert result.nonaborting_count == 2 * depth

    @pytest.mark.parametrize("layers", [8, 32])
    def test_benchmark_layered_circuit_pipeline(self, benchmark, layers):
        program = layered_circuit(layers)
        result = benchmark(lambda: differentiate_and_compile(program, THETA))
        assert result.nonaborting_count == layers
