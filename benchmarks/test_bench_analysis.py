"""The static-analysis layer's own cost: overhead and scheduling payoff.

Two measurements, both landing in ``BENCH_analysis.json``:

* **analysis overhead** — the abstract-interpretation cost model runs on
  every submitted request (admission control and group ordering read its
  prediction), so it must be effectively free on the hot path.  The memo
  keyed on program identity makes repeat queries dict lookups; the
  acceptance floor (full mode) is warm analysis time **≤ 5%** of warm
  planning time for the same queue snapshot.
* **cost-ordered scheduling** — the planner emits groups largest-cost
  first so a multi-worker drain starts the long pole immediately (classic
  LPT list scheduling).  True parallel makespans need real cores, which
  the CI box does not have, so the benchmark measures each group's actual
  single-threaded execution seconds, then computes the two-worker
  list-scheduling makespan in the planner's cost order versus the
  adversarial smallest-first order.  The assertion is deliberately loose
  (cost order must not be *worse*); the recorded ratio is the artifact.
"""

from __future__ import annotations

import time

import numpy as np

from repro.lang.builder import case_on_qubit, rx, rxx, ry, seq
from repro.lang.parameters import ParameterBinding, ParameterVector
from repro.sim.hilbert import RegisterLayout
from repro.sim.statevector import StateVector
from repro.api import Estimator
from repro.service import EstimatorService, request_cost
from repro.service.planner import QueueItem, plan

from benchmarks.conftest import record_result, register_report, smoke_mode

SMOKE = smoke_mode()

#: Register width of the workload programs.
QUBITS = 4 if SMOKE else 8
#: Input points per program.
POINTS = 4 if SMOKE else 12
#: Timing repeats (min is reported).
REPEATS = 3 if SMOKE else 5

_results: dict[str, dict] = {}


def _ladder(num_qubits: int, depth: int, *, branching: bool = False):
    """A layered circuit of ``depth`` rotation layers; ``branching=True``
    adds a measurement-controlled branch (trajectory tier)."""
    qubits = [f"q{i}" for i in range(num_qubits)]
    parameters = ParameterVector("t", 2).as_tuple()
    statements = []
    for layer in range(depth):
        statements += [
            rx(parameters[layer % 2], qubits[i]) for i in range(num_qubits)
        ]
        statements += [
            rxx(0.4, qubits[i], qubits[i + 1]) for i in range(num_qubits - 1)
        ]
    if branching:
        statements.append(
            case_on_qubit(
                qubits[0], {0: ry(parameters[0], qubits[1]), 1: rx(0.7, qubits[1])}
            )
        )
    program = seq(statements)
    layout = RegisterLayout(qubits)
    binding = ParameterBinding.from_values(parameters, np.linspace(0.3, 1.1, 2))
    observable = np.array([[1, 0], [0, -1]], dtype=complex)
    return program, layout, binding, observable, qubits


def _basis_vectors(layout, count: int) -> list[StateVector]:
    dim = layout.total_dim
    vectors = []
    for index in range(count):
        amplitudes = np.zeros(dim, dtype=complex)
        amplitudes[index % dim] = 1.0
        vectors.append(StateVector(layout, amplitudes))
    return vectors


def _workload():
    """Mixed-size request list: shallow and deep programs, values and one
    gradient per program — group costs span orders of magnitude."""
    requests = []
    for depth, branching in ((1, False), (3, False), (2, True)):
        program, layout, binding, observable, qubits = _ladder(
            QUBITS, depth, branching=branching
        )
        estimator = Estimator(
            program, observable, targets=(qubits[-1],), backend="auto"
        )
        states = _basis_vectors(layout, POINTS)
        requests += [estimator.request_value(state, binding) for state in states]
        requests.append(estimator.request_gradient(states[0], binding))
    return requests


def _items(requests) -> list[QueueItem]:
    return [
        QueueItem(request=request, handle=None, session_rank=rank, seq=rank)
        for rank, request in enumerate(requests)
    ]


def _best_of(repeats, thunk) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        thunk()
        best = min(best, time.perf_counter() - start)
    return best


def test_analysis_overhead_is_marginal_against_planning():
    requests = _workload()
    items = _items(requests)

    # Warm both the cost memo and any denotation caches.
    plan(items)
    for request in requests:
        request_cost(request)

    plan_s = _best_of(REPEATS, lambda: plan(items))
    analysis_s = _best_of(
        REPEATS, lambda: [request_cost(request) for request in requests]
    )

    overhead = analysis_s / plan_s
    _results["overhead"] = {
        "requests": len(requests),
        "warm_plan_s": plan_s,
        "warm_analysis_s": analysis_s,
        "analysis_over_plan": overhead,
    }
    record_result("analysis", "overhead", _results["overhead"])
    if not SMOKE:
        assert overhead <= 0.05, (
            f"warm cost analysis took {overhead:.1%} of planning time"
        )


def _makespan(durations: list[float], workers: int) -> float:
    """List-scheduling makespan: each job goes to the least-loaded worker
    in the given order."""
    loads = [0.0] * workers
    for duration in durations:
        loads[loads.index(min(loads))] += duration
    return max(loads)


def test_cost_ordered_scheduling_beats_adverse_order():
    requests = _workload()
    execution_plan = plan(_items(requests))

    predicted = [group.predicted_cost for group in execution_plan.groups]
    assert predicted == sorted(predicted, reverse=True)

    # Measure each group's actual execution seconds with a real drain:
    # one service per measurement, per-tier wall time from stats.timings
    # is too coarse, so time each group's requests through their own
    # flush instead.
    group_seconds = []
    for group in execution_plan.groups:
        group_requests = [row.request for row in group.rows]
        service = EstimatorService("auto")
        handles = [service.submit(request) for request in group_requests]
        start = time.perf_counter()
        service.flush()
        for handle in handles:
            handle.result()
        group_seconds.append(time.perf_counter() - start)

    # Two-worker list scheduling over the measured durations: the
    # planner's order (largest predicted cost first) versus the
    # adversarial smallest-first order.
    by_cost = group_seconds  # already in plan (cost) order
    adverse = [
        seconds
        for _, seconds in sorted(
            zip(predicted, group_seconds), key=lambda pair: pair[0]
        )
    ]
    cost_makespan = _makespan(by_cost, workers=2)
    adverse_makespan = _makespan(adverse, workers=2)
    ratio = adverse_makespan / cost_makespan if cost_makespan > 0 else 1.0

    _results["scheduling"] = {
        "groups": len(group_seconds),
        "group_seconds": group_seconds,
        "predicted_costs": predicted,
        "cost_order_makespan_s": cost_makespan,
        "adverse_order_makespan_s": adverse_makespan,
        "speedup": ratio,
    }
    record_result("analysis", "scheduling", _results["scheduling"])
    # Loose on purpose: with near-equal groups LPT ties the adverse order;
    # it must never lose by more than measurement noise.
    assert cost_makespan <= adverse_makespan * 1.25, (
        f"cost-ordered makespan {cost_makespan:.4f}s worse than adverse "
        f"{adverse_makespan:.4f}s"
    )


def test_predicted_telemetry_tracks_actual_tiers():
    requests = _workload()
    service = EstimatorService("auto")
    handles = [service.submit(request) for request in requests]
    service.flush()
    for handle in handles:
        handle.result()
    # Every tier that spent wall time carries a prediction and vice versa.
    assert set(service.stats.predicted) == set(service.stats.timings)
    _results["telemetry"] = {
        "predicted_flops_by_tier": dict(service.stats.predicted),
        "actual_seconds_by_tier": dict(service.stats.timings),
    }
    record_result("analysis", "telemetry", _results["telemetry"])


def _report():
    lines = []
    overhead = _results.get("overhead")
    if overhead:
        lines.append(
            f"warm plan {overhead['warm_plan_s'] * 1e3:8.2f} ms | warm cost analysis "
            f"{overhead['warm_analysis_s'] * 1e3:8.3f} ms | "
            f"{overhead['analysis_over_plan']:.1%} of plan time "
            f"({overhead['requests']} requests)"
        )
    scheduling = _results.get("scheduling")
    if scheduling:
        lines.append(
            f"2-worker makespan: cost order {scheduling['cost_order_makespan_s'] * 1e3:8.1f} ms | "
            f"adverse order {scheduling['adverse_order_makespan_s'] * 1e3:8.1f} ms | "
            f"{scheduling['speedup']:.2f}x ({scheduling['groups']} groups)"
        )
    telemetry = _results.get("telemetry")
    if telemetry:
        for tier, flops in sorted(telemetry["predicted_flops_by_tier"].items()):
            seconds = telemetry["actual_seconds_by_tier"].get(tier, 0.0)
            lines.append(
                f"tier {tier:10s} predicted {flops:12.3g} model flops | "
                f"actual {seconds * 1e3:8.1f} ms"
            )
    return "\n".join(lines)


import pytest


@pytest.fixture(scope="module", autouse=True)
def _report_fixture():
    yield
    register_report(
        "Static analysis: cost-model overhead and scheduling payoff", _report()
    )
