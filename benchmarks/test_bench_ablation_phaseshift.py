"""Ablation — the single-circuit gadget vs. the two-circuit phase-shift rule.

Sections 1 and 6 motivate the paper's ``R'`` gadget over the existing
phase-shift rule on two axes:

1. **program count** — the gadget needs at most ``OC_j`` single-ancilla
   programs per parameter (often fewer after abort pruning), while the
   phase-shift rule needs ``2·OC_j`` circuits;
2. **expressiveness** — the phase-shift rule is only defined for circuits,
   so programs with ``case``/``while`` controls (the while/if halves of the
   evaluation and the P2 classifier) are out of its reach.

The benchmarks measure the wall-clock cost of both schemes on the P1
classifier (they agree numerically, which is asserted) and record the
per-parameter program counts on representative programs; the comparison is
printed at the end of the benchmark session.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.comparison import scheme_costs
from repro.baselines.phase_shift import phase_shift_gradient
from repro.errors import TransformError
from repro.autodiff.execution import gradient
from repro.vqc.classifier import build_p1, build_p2
from repro.vqc.generators import SHARED_PARAMETER, build_instance

from benchmarks.conftest import record_result, register_report

_cost_rows = {}


@pytest.fixture(scope="module")
def p1_setup():
    classifier = build_p1()
    binding = classifier.initial_binding(seed=1, spread=0.5)
    bits = (1, 0, 1, 0)
    return classifier, classifier.input_state(bits), classifier.readout_observable(), binding


class TestAgreementAndExpressiveness:
    def test_gradients_agree_on_p1(self, benchmark, p1_setup):
        classifier, state, observable, binding = p1_setup
        parameters = classifier.parameters[:6]
        ours = benchmark.pedantic(
            lambda: gradient(classifier.program, parameters, observable, state, binding),
            rounds=1,
            iterations=1,
        )
        baseline = phase_shift_gradient(classifier.program, parameters, observable, state, binding)
        assert np.allclose(ours, baseline, atol=1e-8)

    def test_only_the_gadget_scheme_differentiates_p2(self, benchmark):
        classifier = build_p2()
        binding = classifier.initial_binding(seed=1)
        state = classifier.input_state((0, 0, 0, 0))
        observable = classifier.readout_observable()
        values = benchmark.pedantic(
            lambda: gradient(
                classifier.program, classifier.parameters[:2], observable, state, binding
            ),
            rounds=1,
            iterations=1,
        )
        assert values.shape == (2,) and np.all(np.isfinite(values))
        with pytest.raises(TransformError):
            phase_shift_gradient(
                classifier.program, classifier.parameters[:1], observable, state, binding
            )


class TestProgramCounts:
    @pytest.mark.parametrize(
        "label",
        ["P1 classifier", "P2 classifier", "QNN_M,i", "QNN_M,w"],
    )
    def test_gadget_never_needs_more_programs(self, benchmark, label):
        if label == "P1 classifier":
            classifier = build_p1()
            program, parameter = classifier.program, classifier.parameters[0]
        elif label == "P2 classifier":
            classifier = build_p2()
            program, parameter = classifier.program, classifier.parameters[0]
        else:
            _, rest = label.split("_")
            scale, variant = rest.split(",")
            instance = build_instance("QNN", scale, variant)
            program, parameter = instance.program, SHARED_PARAMETER

        costs = benchmark.pedantic(lambda: scheme_costs(program, parameter), rounds=1, iterations=1)
        _cost_rows[label] = costs
        record_result(
            "ablation_phaseshift",
            label,
            {
                "gadget_programs": costs["gadget"].programs_per_parameter,
                "phase_shift_circuits": costs["phase_shift"].programs_per_parameter,
            },
        )
        lines = []
        for name, entry in _cost_rows.items():
            shift = entry["phase_shift"].programs_per_parameter
            shift_text = str(shift) if shift is not None else "not applicable (controls)"
            lines.append(
                f"  {name:14s} gadget: {entry['gadget'].programs_per_parameter:3d} programs "
                f"(+1 ancilla), phase-shift: {shift_text}"
            )
        register_report(
            "Ablation — programs per gradient entry (gadget vs phase-shift rule)",
            "\n".join(lines),
        )

        gadget = costs["gadget"].programs_per_parameter
        shift = costs["phase_shift"].programs_per_parameter
        if shift is not None:
            assert gadget <= shift
            assert shift == 2 * gadget or gadget < shift
        else:
            assert costs["gadget"].applicable


class TestGradientCost:
    def test_benchmark_gadget_gradient_on_p1(self, benchmark, p1_setup):
        classifier, state, observable, binding = p1_setup
        parameters = classifier.parameters[:8]
        benchmark.pedantic(
            lambda: gradient(classifier.program, parameters, observable, state, binding),
            rounds=2,
            iterations=1,
        )

    def test_benchmark_phase_shift_gradient_on_p1(self, benchmark, p1_setup):
        classifier, state, observable, binding = p1_setup
        parameters = classifier.parameters[:8]
        benchmark.pedantic(
            lambda: phase_shift_gradient(classifier.program, parameters, observable, state, binding),
            rounds=2,
            iterations=1,
        )
