"""Execution-cost benchmarks for the simulation substrate (Section 7 execution).

The paper's execution phase runs every compiled derivative program on a
fresh copy of the input state and estimates the ancilla readout.  These
benchmarks time the two execution modes this library offers on a
representative small instance:

* exact density-matrix evaluation of the derivative readout,
* shot-based estimation with the Chernoff-bounded repetition count,

plus the raw denotational evaluation of a benchmark block (the inner loop of
everything else).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.lang.parameters import ParameterBinding
from repro.linalg.observables import pauli_observable
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.semantics.denotational import denote
from repro.autodiff.execution import differentiate_and_compile
from repro.vqc.generators import SHARED_PARAMETER, build_instance


@pytest.fixture(scope="module")
def small_qnn():
    instance = build_instance("QNN", "S", "i")
    layout = RegisterLayout(sorted(instance.program.qvars()))
    state = DensityState.zero_state(layout)
    binding = ParameterBinding(
        {parameter: 0.3 for parameter in instance.program.parameters()}
    )
    observable = pauli_observable("Z" * len(layout.names))
    return instance, state, binding, observable


def test_benchmark_denotational_evaluation(benchmark, small_qnn):
    instance, state, binding, _ = small_qnn
    output = benchmark(lambda: denote(instance.program, state, binding))
    assert output.trace() <= 1.0 + 1e-9


def test_benchmark_exact_derivative_readout(benchmark, small_qnn):
    instance, state, binding, observable = small_qnn
    program_set = differentiate_and_compile(instance.program, SHARED_PARAMETER)
    value = benchmark(lambda: program_set.evaluate(observable, state, binding))
    assert np.isfinite(value)


def test_benchmark_sampled_derivative_readout(benchmark, small_qnn):
    instance, state, binding, observable = small_qnn
    program_set = differentiate_and_compile(instance.program, SHARED_PARAMETER)
    rng = np.random.default_rng(0)
    exact = program_set.evaluate(observable, state, binding)
    estimate = benchmark.pedantic(
        lambda: program_set.evaluate_sampled(
            observable, state, binding, precision=0.3, rng=rng
        ),
        rounds=1,
        iterations=1,
    )
    assert abs(estimate - exact) < 0.5
