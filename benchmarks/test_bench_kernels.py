"""Embed-vs-kernel speedup of the simulation hot path.

The contraction kernels of :mod:`repro.sim.kernels` apply a k-local gate to
the target axes of the state tensor in ``O(2^k · 4^n)`` (density) /
``O(2^k · 2^n)`` (statevector), where the historical embedding path built
the full ``2^n × 2^n`` operator and paid ``O(8^n)`` / ``O(4^n)`` per
application.  This module measures both paths on the same states so the gain
is visible in the bench trajectory, and asserts the acceptance floor: at
least a 5× speedup for a 1-qubit gate on a ≥10-qubit density state.

The embed path is timed through the retained reference implementation
(:meth:`repro.sim.hilbert.RegisterLayout.embed_operator` + full-space matrix
products); the kernel path through the rewired state transformers.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.linalg.gates import HADAMARD
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.sim.statevector import StateVector

from benchmarks.conftest import record_result, register_report, smoke_mode

DENSITY_QUBITS = (4, 6) if smoke_mode() else (4, 6, 8, 10)
STATEVECTOR_QUBITS = (6, 8) if smoke_mode() else (8, 10, 12)

_density_rows: dict[int, tuple[float, float]] = {}
_vector_rows: dict[int, tuple[float, float]] = {}


def _best_time(function, repeats: int = 5) -> float:
    function()  # warm caches (embed memo, BLAS thread pools) outside the clock
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _layout(num_qubits: int) -> RegisterLayout:
    return RegisterLayout([f"q{i}" for i in range(num_qubits)])


@pytest.mark.parametrize("num_qubits", DENSITY_QUBITS)
def test_density_gate_kernel_vs_embed(num_qubits):
    layout = _layout(num_qubits)
    state = DensityState.zero_state(layout).apply_unitary(HADAMARD, ["q0"])
    target = [f"q{num_qubits // 2}"]

    def embed_path():
        full = layout.embed_operator(HADAMARD, target)
        return full @ state.matrix @ full.conj().T

    def kernel_path():
        return state.apply_unitary(HADAMARD, target)

    assert np.allclose(kernel_path().matrix, embed_path())

    embed_time = _best_time(embed_path)
    kernel_time = _best_time(kernel_path)
    _density_rows[num_qubits] = (embed_time, kernel_time)
    if num_qubits >= 10:
        assert embed_time / kernel_time >= 5.0


@pytest.mark.parametrize("num_qubits", STATEVECTOR_QUBITS)
def test_statevector_gate_kernel_vs_embed(num_qubits):
    layout = _layout(num_qubits)
    state = StateVector(layout).apply_unitary(HADAMARD, ["q0"])
    target = [f"q{num_qubits // 2}"]

    def embed_path():
        full = layout.embed_operator(HADAMARD, target)
        return full @ state.amplitudes

    def kernel_path():
        return state.copy().apply_unitary(HADAMARD, target)

    assert np.allclose(kernel_path().amplitudes, embed_path())

    embed_time = _best_time(embed_path)
    kernel_time = _best_time(kernel_path)
    _vector_rows[num_qubits] = (embed_time, kernel_time)


def test_register_kernel_report():
    header = f"{'#qb':>5s} {'embed (ms)':>12s} {'kernel (ms)':>12s} {'speedup':>9s}"
    lines = [header, "-" * len(header)]
    for title, rows in (("density", _density_rows), ("statevector", _vector_rows)):
        lines.append(f"[{title}]")
        for num_qubits in sorted(rows):
            embed_time, kernel_time = rows[num_qubits]
            lines.append(
                f"{num_qubits:>5d} {embed_time * 1e3:>12.3f} {kernel_time * 1e3:>12.3f} "
                f"{embed_time / kernel_time:>8.1f}x"
            )
        record_result(
            "kernels",
            title,
            {
                str(num_qubits): {
                    "embed_ms": rows[num_qubits][0] * 1e3,
                    "kernel_ms": rows[num_qubits][1] * 1e3,
                    "speedup": rows[num_qubits][0] / rows[num_qubits][1],
                }
                for num_qubits in sorted(rows)
            },
        )
    register_report(
        "Kernel speedup — 1-qubit gate, embed path vs contraction kernel",
        "\n".join(lines),
    )
