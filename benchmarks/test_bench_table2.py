"""Table 2 — compiler output on the medium/large QNN, VQE and QAOA instances.

Regenerates the twelve rows of the paper's Table 2: for every instance the
occurrence count ``OC(·)``, the number of non-aborting derivative programs
``|#∂/∂θ(·)|``, and the static size metrics (#gates, #lines, #layers,
#qubits).  The pytest-benchmark timings measure the cost of the full
compile-time pipeline (code transformation + compilation + counting) per
instance — the quantity the paper's "compiler performance" discussion is
about.

The reproduced table (measured/paper per cell) is printed at the end of the
benchmark session.
"""

from __future__ import annotations

import pytest

from repro.analysis.resources import derivative_program_count, occurrence_count
from repro.vqc.generators import build_instance

from benchmarks.conftest import (
    PAPER_TABLE2,
    format_table,
    measured_row,
    record_result,
    register_report,
)

#: (family, scale, variant) for the twelve Table 2 rows.
TABLE2_SPECS = [
    (family, scale, variant)
    for family in ("QNN", "VQE", "QAOA")
    for scale in ("M", "L")
    for variant in ("i", "w")
]

_collected_rows: dict[str, tuple] = {}


@pytest.mark.parametrize("family,scale,variant", TABLE2_SPECS)
def test_table2_row(benchmark, family, scale, variant):
    instance = build_instance(family, scale, variant)

    def pipeline():
        return derivative_program_count(instance.program, instance.shared_parameter)

    count = benchmark(pipeline)
    row = measured_row(instance)
    _collected_rows[instance.label] = row
    register_report(
        "Table 2 — selective compiler output (measured/paper)",
        format_table(_collected_rows, PAPER_TABLE2),
    )
    record_result(
        "table2",
        instance.label,
        dict(
            zip(
                ("OC", "derivative_programs", "gates", "lines", "layers", "qubits"),
                row,
            )
        ),
    )

    oc = occurrence_count(instance.program, instance.shared_parameter)
    # Proposition 7.2 and the qualitative claims of Table 2.
    assert count == row[1]
    assert count <= oc
    if variant == "i":
        assert count == oc
    else:
        assert count < oc
    # Where the construction matches the paper exactly, check it stays exact.
    paper = PAPER_TABLE2[instance.label]
    if instance.label not in ("VQE_M,i", "VQE_M,w"):
        assert (row[0], row[1], row[2]) == (paper[0], paper[1], paper[2])
