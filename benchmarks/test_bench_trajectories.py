"""Branch-splitting trajectory tier vs exact density on branching programs.

PR 3's statevector tier only served measurement-free programs; this module
measures the tier that keeps *measuring* programs on ``O(2^n)`` amplitudes
(:mod:`repro.sim.trajectories`): a 10-qubit P2-style ``case`` program — the
shape of the Figure 6 controlled classifier, scaled up — runs as a 2-branch
ensemble instead of an ``O(4^n)`` density matrix, and a bounded ``while``
demonstrates the certified ``ε``-truncation.

Acceptance floor (asserted at full size, relaxed under
``REPRO_BENCH_SMOKE``): on the ≥ 10-qubit ``case`` program the trajectory
tier is ≥ 10× faster than the exact density tier while matching its
expectation values to ≤ 1e-10.  All numbers land in
``BENCH_trajectories.json``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.lang.builder import bounded_while_on_qubit, case_on_qubit, rx, rxx, ry, seq
from repro.lang.parameters import ParameterBinding, ParameterVector
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.sim.trajectories import denote_trajectory_batch
from repro.api import DenotationCache, Estimator, ExactDensityBackend, StatevectorBackend

from benchmarks.conftest import record_result, register_report, smoke_mode

SMOKE = smoke_mode()

#: Register size of the headline P2-style case program.
CASE_QUBITS = 6 if SMOKE else 10
#: Register size of the gradient comparison (density pays an extra ancilla).
GRADIENT_QUBITS = 4 if SMOKE else 8
#: Loop bound / register size of the ε-truncation demonstration.
WHILE_QUBITS = 4 if SMOKE else 10
#: Continuing mass halves per iteration, so the ε=1e-3 exit engages around
#: iteration 10 — the bound must exceed that in smoke mode too.
WHILE_BOUND = 12 if SMOKE else 24
WHILE_EPSILON = 1e-3


def _p2_style(num_qubits: int):
    """A scaled-up Figure-6 P2 shape: entangling layer, then a measured case.

    Every run applies the same number of gates; which second layer runs is
    decided by measuring the first qubit — exactly the control structure
    that used to demote the whole program to the ``O(4^n)`` density tier.
    """
    qubits = [f"q{i}" for i in range(num_qubits)]
    theta = ParameterVector("t", 2).as_tuple()
    phi = ParameterVector("p", 2).as_tuple()
    statements = [rx(theta[i % 2], q) for i, q in enumerate(qubits)]
    statements += [rxx(0.4, qubits[i], qubits[i + 1]) for i in range(num_qubits - 1)]
    statements.append(
        case_on_qubit(
            qubits[0],
            {
                0: seq([ry(phi[0], q) for q in qubits]),
                1: seq([ry(phi[1], q) for q in qubits]),
            },
        )
    )
    program = seq(statements)
    layout = RegisterLayout(qubits)
    binding = ParameterBinding.from_values(
        theta + phi, np.linspace(0.3, 1.2, len(theta + phi))
    )
    observable = np.array([[1, 0], [0, -1]], dtype=complex)
    return program, layout, theta + phi, binding, observable, qubits


def _estimator(program, observable, qubits, backend) -> Estimator:
    # cache_size=0 everywhere: these are *simulation* benchmarks, a shared
    # denotation cache would turn repeats into lookups.
    return Estimator(
        program, observable, targets=(qubits[-1],), backend=backend, cache_size=0
    )


def _uncached_statevector(**kwargs) -> StatevectorBackend:
    return StatevectorBackend(cache=DenotationCache(max_entries=0), **kwargs)


def _best_time(function, repeats: int = 3) -> float:
    function()  # warm compile caches / BLAS pools outside the clock
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def test_case_program_value_density_vs_trajectory():
    """The headline number: the P2-style case program on both tiers."""
    program, layout, _, binding, observable, qubits = _p2_style(CASE_QUBITS)
    state = DensityState.basis_state(layout, {})

    fast = _estimator(program, observable, qubits, _uncached_statevector())
    exact = _estimator(program, observable, qubits, ExactDensityBackend())
    assert fast.backend.tier_for(program) == "trajectory"

    agreement = abs(exact.value(state, binding) - fast.value(state, binding))
    assert agreement <= 1e-10

    density_time = _best_time(lambda: exact.value(state, binding))
    trajectory_time = _best_time(lambda: fast.value(state, binding))
    speedup = density_time / trajectory_time

    result = denote_trajectory_batch(
        program, layout, state.pure_amplitudes()[np.newaxis, :], binding
    )
    record_result(
        "trajectories",
        "case_value",
        {
            "qubits": CASE_QUBITS,
            "density_s": density_time,
            "trajectory_s": trajectory_time,
            "speedup": speedup,
            "branches": int(result.amplitudes.shape[0]),
            "branch_peak": int(result.branch_peak),
            "max_abs_error": float(agreement),
        },
    )
    register_report(
        "Trajectory tier — 10-qubit P2-style case program (forward value)",
        f"  {CASE_QUBITS} qubits, {result.amplitudes.shape[0]} branches: "
        f"density {density_time * 1e3:.1f} ms, trajectory {trajectory_time * 1e3:.2f} ms "
        f"({speedup:.0f}×)",
    )
    if not SMOKE:
        assert speedup >= 10.0


def test_case_program_gradient_matches_density():
    """The full gradient (case gadgets included) through the branch ensembles."""
    program, layout, parameters, binding, observable, qubits = _p2_style(GRADIENT_QUBITS)
    state = DensityState.basis_state(layout, {})

    exact = _estimator(program, observable, qubits, ExactDensityBackend())
    fast = _estimator(program, observable, qubits, _uncached_statevector())

    reference = exact.gradient(state, binding)  # warms the compiled multisets
    trajectory = fast.gradient(state, binding)
    assert np.allclose(reference, trajectory, atol=1e-10)

    density_time = _best_time(lambda: exact.gradient(state, binding), repeats=1)
    trajectory_time = _best_time(lambda: fast.gradient(state, binding))
    record_result(
        "trajectories",
        "case_gradient",
        {
            "qubits": GRADIENT_QUBITS,
            "parameters": len(parameters),
            "density_s": density_time,
            "trajectory_s": trajectory_time,
            "speedup": density_time / trajectory_time,
            "max_abs_gradient_error": float(np.max(np.abs(reference - trajectory))),
        },
    )
    register_report(
        "Trajectory tier — case-program gradient (branching multiset members)",
        f"  {GRADIENT_QUBITS} qubits, {len(parameters)} parameters: "
        f"density {density_time:.2f} s, trajectory {trajectory_time * 1e3:.1f} ms "
        f"({density_time / trajectory_time:.0f}×)",
    )


def test_while_truncation_is_certified_and_cheaper():
    """ε-truncated while: error provably ≤ ε, and fewer unrolled iterations."""
    qubits = [f"q{i}" for i in range(WHILE_QUBITS)]
    body = seq([rx(np.pi / 2, qubits[0]), ry(0.3, qubits[1])])
    program = bounded_while_on_qubit(qubits[0], body, WHILE_BOUND)
    layout = RegisterLayout(qubits)
    state = DensityState.basis_state(layout, {qubits[0]: 1})
    observable = np.array([[1, 0], [0, -1]], dtype=complex)

    exact = _estimator(program, observable, qubits, ExactDensityBackend())
    full = _estimator(program, observable, qubits, _uncached_statevector())
    truncated = _estimator(
        program, observable, qubits, _uncached_statevector(epsilon=WHILE_EPSILON)
    )

    reference = exact.value(state, None)
    assert abs(full.value(state, None) - reference) <= 1e-10
    error = abs(truncated.value(state, None) - reference)
    assert error <= WHILE_EPSILON  # the certified bound holds in practice

    stack = state.pure_amplitudes()[np.newaxis, :]
    exact_run = denote_trajectory_batch(program, layout, stack, None)
    from repro.sim.trajectories import TrajectoryOptions

    truncated_run = denote_trajectory_batch(
        program, layout, stack, None, options=TrajectoryOptions(mass_budget=WHILE_EPSILON)
    )
    assert truncated_run.dropped[0] > 0.0  # truncation actually engaged

    full_time = _best_time(lambda: full.value(state, None))
    truncated_time = _best_time(lambda: truncated.value(state, None))
    record_result(
        "trajectories",
        "while_truncation",
        {
            "qubits": WHILE_QUBITS,
            "bound": WHILE_BOUND,
            "epsilon": WHILE_EPSILON,
            "exact_branches": int(exact_run.amplitudes.shape[0]),
            "truncated_branches": int(truncated_run.amplitudes.shape[0]),
            "certified_dropped_mass": float(truncated_run.dropped[0]),
            "observed_error": float(error),
            "full_s": full_time,
            "truncated_s": truncated_time,
        },
    )
    register_report(
        "Trajectory tier — certified while(T) truncation",
        f"  {WHILE_QUBITS} qubits, bound {WHILE_BOUND}, ε={WHILE_EPSILON:g}: "
        f"{exact_run.amplitudes.shape[0]} → {truncated_run.amplitudes.shape[0]} branches, "
        f"observed error {error:.2e} ≤ certified "
        f"{truncated_run.dropped[0]:.2e}, "
        f"{full_time * 1e3:.2f} ms → {truncated_time * 1e3:.2f} ms",
    )


def test_benchmark_trajectory_case_value(benchmark):
    """pytest-benchmark timing of the trajectory-tier forward value."""
    program, layout, _, binding, observable, qubits = _p2_style(CASE_QUBITS)
    state = DensityState.basis_state(layout, {})
    fast = _estimator(program, observable, qubits, _uncached_statevector())
    fast.value(state, binding)  # warm gate caches
    benchmark.pedantic(lambda: fast.value(state, binding), rounds=3, iterations=1)
