"""Backend tiers on measurement-free gradient workloads (the PR-3 tentpole).

The paper's execution phase fans the compiled derivative multiset out over
independent simulations (Section 7).  This module measures the execution
tiers that serve that fan-out, on layered hardware-efficient circuits of
8–14 qubits:

* ``ExactDensityBackend`` — the ``O(4^n)`` reference simulator;
* ``StatevectorBackend`` — the ``O(2^n)`` pure-state tier the purity
  analysis unlocks for measurement-free programs;
* the *batched* statevector path — same tier, whole input batches advanced
  through each gate with one broadcasted contraction;
* ``ParallelBackend`` — the process-pool fan-out over either inner tier.

Acceptance floor (asserted at full size, relaxed under
``REPRO_BENCH_SMOKE``): on a ≥ 10-qubit measurement-free gradient the
statevector tier is ≥ 10× faster than the density tier while matching its
values and gradients to 1e-10, and the batched fan-out beats per-point
statevector calls.  All numbers land in ``BENCH_backends.json``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.lang.builder import rx, rxx, ry, seq
from repro.lang.parameters import ParameterBinding, ParameterVector
from repro.sim.density import DensityState
from repro.sim.hilbert import RegisterLayout
from repro.sim.statevector import StateVector
from repro.api import (
    DenotationCache,
    Estimator,
    ExactDensityBackend,
    ParallelBackend,
    StatevectorBackend,
)

from benchmarks.conftest import record_result, register_report, smoke_mode

SMOKE = smoke_mode()

#: Sizes for the forward-value scan (density only up to _DENSITY_MAX).
VALUE_QUBITS = (4, 6) if SMOKE else (8, 10, 12, 14)
_DENSITY_MAX = 6 if SMOKE else 10
#: Size of the headline gradient comparison.
GRADIENT_QUBITS = 6 if SMOKE else 10
#: Batch size for the batched-fan-out comparison.  10 qubits: big enough to
#: be a real register, small enough that per-call numpy dispatch (what the
#: batching removes) is still a visible fraction of each gate.
BATCH_SIZE = 4 if SMOKE else 16
BATCH_QUBITS = 6 if SMOKE else 10

_value_rows: dict[int, dict] = {}


def _ladder(num_qubits: int, num_parameters: int = 2):
    """A measurement-free layered circuit: RX column, RXX chain, RY column.

    Each parameter occurs exactly twice (one RX, one RY), so every
    derivative multiset compiles to two gadget programs — a fan-out of
    ``2 · num_parameters`` programs per gradient.
    """
    qubits = [f"q{i}" for i in range(num_qubits)]
    parameters = ParameterVector("t", num_parameters).as_tuple()
    statements = [rx(parameters[i % num_parameters], qubits[i]) for i in range(num_qubits)]
    statements += [rxx(0.4, qubits[i], qubits[i + 1]) for i in range(num_qubits - 1)]
    statements += [
        ry(parameters[i % num_parameters], qubits[i]) for i in range(num_parameters)
    ]
    program = seq(statements)
    layout = RegisterLayout(qubits)
    binding = ParameterBinding.from_values(
        parameters, np.linspace(0.3, 1.1, num_parameters)
    )
    observable = np.array([[1, 0], [0, -1]], dtype=complex)
    return program, layout, parameters, binding, observable, qubits


def _estimator(program, observable, qubits, backend) -> Estimator:
    # cache_size=0 everywhere: these are *simulation* benchmarks, a shared
    # denotation cache would turn repeats into lookups.
    return Estimator(
        program, observable, targets=(qubits[-1],), backend=backend, cache_size=0
    )


def _uncached_statevector() -> StatevectorBackend:
    return StatevectorBackend(cache=DenotationCache(max_entries=0))


def _best_time(function, repeats: int = 3) -> float:
    function()  # warm compile caches / BLAS pools outside the clock
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _one_time(function) -> float:
    """A single timed run — for the paths too expensive to repeat."""
    start = time.perf_counter()
    function()
    return time.perf_counter() - start


@pytest.mark.parametrize("num_qubits", VALUE_QUBITS)
def test_value_density_vs_statevector(num_qubits):
    program, layout, _, binding, observable, qubits = _ladder(num_qubits)
    state = DensityState.basis_state(layout, {})
    sv = _estimator(program, observable, qubits, _uncached_statevector())
    sv_time = _best_time(lambda: sv.value(state, binding))
    row = {"statevector_s": sv_time}
    if num_qubits <= _DENSITY_MAX:
        exact = _estimator(program, observable, qubits, ExactDensityBackend())
        density_time = _best_time(lambda: exact.value(state, binding))
        assert abs(exact.value(state, binding) - sv.value(state, binding)) < 1e-10
        row["density_s"] = density_time
        row["speedup"] = density_time / sv_time
    _value_rows[num_qubits] = row
    record_result("backends", "value", {str(n): r for n, r in sorted(_value_rows.items())})


def test_gradient_density_vs_statevector():
    """The headline comparison: one full gradient on the ≥10-qubit ladder.

    The density gradient is timed with a single run (it costs tens of
    seconds and its run-to-run spread is far below the ~three orders of
    magnitude being measured); the compile-time artifacts are warmed by the
    reference evaluation first, so only execution is on the clock.
    """
    program, layout, parameters, binding, observable, qubits = _ladder(GRADIENT_QUBITS)
    state = DensityState.basis_state(layout, {})

    exact = _estimator(program, observable, qubits, ExactDensityBackend())
    sv = _estimator(program, observable, qubits, _uncached_statevector())

    reference = exact.gradient(state, binding)  # warms the compiled multisets
    fast = sv.gradient(state, binding)
    assert np.allclose(reference, fast, atol=1e-10)

    density_time = _one_time(lambda: exact.gradient(state, binding))
    sv_time = _best_time(lambda: sv.gradient(state, binding))

    speedup = density_time / sv_time
    record_result(
        "backends",
        "gradient",
        {
            "qubits": GRADIENT_QUBITS,
            "parameters": len(parameters),
            "density_s": density_time,
            "statevector_s": sv_time,
            "statevector_speedup": speedup,
            "max_abs_gradient_error": float(np.max(np.abs(reference - fast))),
        },
    )
    register_report(
        "Backend tiers — full gradient on the measurement-free ladder",
        f"  {GRADIENT_QUBITS} qubits, {len(parameters)} parameters: "
        f"density {density_time:.2f} s, statevector {sv_time * 1e3:.1f} ms "
        f"({speedup:.0f}×)",
    )
    if not SMOKE:
        assert speedup >= 10.0


def test_batched_fanout_beats_per_point_calls():
    """One stacked ``gradients`` call vs per-point statevector gradients.

    Inputs are ``StateVector``s — the natural representation for a pure
    workload (a density input would spend the comparison on the ``O(4^n)``
    purity extraction rather than on the gate fan-out being measured).
    """
    program, layout, parameters, binding, observable, qubits = _ladder(
        BATCH_QUBITS, num_parameters=4
    )
    rng = np.random.default_rng(7)
    inputs = []
    for _ in range(BATCH_SIZE):
        assignment = {q: int(bit) for q, bit in zip(qubits, rng.integers(0, 2, len(qubits)))}
        inputs.append((StateVector.basis_state(layout, assignment), binding))

    batched = _estimator(program, observable, qubits, _uncached_statevector())
    per_point = _estimator(program, observable, qubits, _uncached_statevector())

    rows = batched.gradients(inputs)
    loop_rows = np.array([per_point.gradient(state, b) for state, b in inputs])
    assert np.allclose(rows, loop_rows, atol=1e-10)

    batched_time = _best_time(lambda: batched.gradients(inputs))
    per_point_time = _best_time(
        lambda: [per_point.gradient(state, b) for state, b in inputs]
    )
    record_result(
        "backends",
        "batched_fanout",
        {
            "qubits": BATCH_QUBITS,
            "batch_size": BATCH_SIZE,
            "parameters": len(parameters),
            "batched_s": batched_time,
            "per_point_s": per_point_time,
            "speedup": per_point_time / batched_time,
        },
    )
    register_report(
        "Backend tiers — batched derivative fan-out vs per-point calls",
        f"  {BATCH_QUBITS} qubits × {BATCH_SIZE} inputs × {len(parameters)} parameters: "
        f"per-point {per_point_time * 1e3:.0f} ms, batched {batched_time * 1e3:.0f} ms "
        f"({per_point_time / batched_time:.1f}×)",
    )
    if not SMOKE:  # tiny smoke sizes can invert under CI scheduler noise
        assert batched_time < per_point_time


def test_parallel_pool_matches_inline_on_batches():
    """The pool fan-out is bit-compatible with inline density evaluation."""
    program, layout, parameters, binding, observable, qubits = _ladder(
        4 if SMOKE else 8
    )
    rng = np.random.default_rng(3)
    inputs = []
    for _ in range(2 if SMOKE else 6):
        assignment = {q: int(bit) for q, bit in zip(qubits, rng.integers(0, 2, len(qubits)))}
        inputs.append((DensityState.basis_state(layout, assignment), binding))

    inline = _estimator(program, observable, qubits, ExactDensityBackend())
    pooled = _estimator(program, observable, qubits, ParallelBackend(ExactDensityBackend()))

    inline_time = _best_time(lambda: inline.gradients(inputs), repeats=2)
    start = time.perf_counter()
    pool_rows = pooled.gradients(inputs)
    first_pool_s = time.perf_counter() - start  # includes worker start-up
    pool_time = _best_time(lambda: pooled.gradients(inputs), repeats=2)

    assert np.allclose(pool_rows, inline.gradients(inputs), atol=1e-12)
    record_result(
        "backends",
        "process_pool",
        {
            "qubits": len(qubits),
            "batch_size": len(inputs),
            "inline_s": inline_time,
            "pool_s": pool_time,
            "pool_first_call_s": first_pool_s,
            "speedup": inline_time / pool_time,
        },
    )
